"""Tests for the synthetic city generator, presets, splits and query protocol."""

import numpy as np
import pytest

from repro.datasets import (
    CITY_PRESETS,
    PORTO,
    XIAN,
    CityPreset,
    build_query_database,
    distort,
    downsample,
    downstream_split,
    generate_city,
    generate_trajectory,
    get_preset,
    odd_even_split,
    partition,
    perturb_instance,
)

TINY = CityPreset(
    name="tiny", extent=2000.0, block=200.0, trip_length_mean=1500.0,
    trip_length_sigma=0.3, point_spacing=50.0, gps_noise=5.0,
    min_points=10, max_points=60,
)


class TestGenerator:
    def test_point_count_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            t = generate_trajectory(TINY, rng)
            assert TINY.min_points <= len(t) <= TINY.max_points

    def test_points_near_city_extent(self):
        trajs = generate_city(TINY, 20, seed=1)
        for t in trajs:
            # GPS noise can spill slightly past the border
            assert t.min() > -100 and t.max() < TINY.extent + 100

    def test_deterministic_given_seed(self):
        a = generate_city(TINY, 5, seed=7)
        b = generate_city(TINY, 5, seed=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_different_seeds_differ(self):
        a = generate_city(TINY, 3, seed=1)
        b = generate_city(TINY, 3, seed=2)
        assert not all(
            x.shape == y.shape and np.allclose(x, y) for x, y in zip(a, b)
        )

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_city(TINY, -1)

    def test_trajectories_follow_roads(self):
        """Points should hug the lattice: deviation from the nearest road
        line is bounded by the GPS noise."""
        trajs = generate_city(TINY, 10, seed=3)
        for t in trajs:
            dx = np.abs(t[:, 0] % TINY.block - 0)  # distance to vertical road
            dx = np.minimum(dx, TINY.block - dx)
            dy = np.abs(t[:, 1] % TINY.block - 0)
            dy = np.minimum(dy, TINY.block - dy)
            on_road = np.minimum(dx, dy)  # on a road if near either line set
            assert np.quantile(on_road, 0.9) < 6 * TINY.gps_noise


class TestPresets:
    def test_registry_contents(self):
        assert set(CITY_PRESETS) == {"porto", "chengdu", "xian", "germany"}
        assert get_preset("porto") is PORTO
        with pytest.raises(KeyError):
            get_preset("london")

    @pytest.mark.parametrize(
        "name,target_points,target_km",
        [("porto", 48, 6.37), ("chengdu", 105, 3.47),
         ("xian", 118, 3.25), ("germany", 72, 252.49)],
    )
    def test_calibration_to_table2(self, name, target_points, target_km):
        """Statistics should land within ~30% of the paper's Table II."""
        trajs = generate_city(get_preset(name), 60, seed=0)
        avg_points = np.mean([len(t) for t in trajs])
        avg_km = np.mean(
            [np.linalg.norm(np.diff(t, axis=0), axis=1).sum() for t in trajs]
        ) / 1000.0
        assert abs(avg_points - target_points) / target_points < 0.3
        assert abs(avg_km - target_km) / target_km < 0.3

    def test_density_contrast(self):
        """Xi'an must be denser (points per km) than Porto — Table II."""
        porto = generate_city(PORTO, 30, seed=1)
        xian = generate_city(XIAN, 30, seed=1)

        def density(trajs):
            pts = sum(len(t) for t in trajs)
            km = sum(np.linalg.norm(np.diff(t, axis=0), axis=1).sum() for t in trajs) / 1000
            return pts / km

        assert density(xian) > 2 * density(porto)


class TestOddEvenSplit:
    def test_partition_is_exact(self):
        t = np.arange(20, dtype=float).reshape(10, 2)
        odd, even = odd_even_split(t)
        np.testing.assert_array_equal(odd, t[0::2])
        np.testing.assert_array_equal(even, t[1::2])
        assert len(odd) + len(even) == len(t)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            odd_even_split(np.zeros((3, 2)))


class TestQueryDatabase:
    def make_pool(self, n=40, seed=0):
        return generate_city(TINY, n, seed=seed)

    def test_shapes_and_ground_truth(self):
        pool = self.make_pool()
        instance = build_query_database(pool, n_queries=5, database_size=20,
                                        rng=np.random.default_rng(1))
        assert len(instance.queries) == 5
        assert len(instance.database) == 20
        assert instance.ground_truth.shape == (5,)
        assert len(np.unique(instance.ground_truth)) == 5

    def test_ground_truth_is_even_half(self):
        pool = self.make_pool()
        instance = build_query_database(pool, n_queries=3, database_size=15,
                                        rng=np.random.default_rng(2))
        for query, truth_idx in zip(instance.queries, instance.ground_truth):
            truth = instance.database[truth_idx]
            # query = odd half, truth = even half: interleaving reconstructs
            # a trajectory whose length is |q| + |t|
            assert abs(len(query) - len(truth)) <= 1
            # they must come from the same source: start points within one step
            assert np.linalg.norm(query[0] - truth[0]) < 3 * TINY.point_spacing

    def test_validation(self):
        pool = self.make_pool(10)
        with pytest.raises(ValueError):
            build_query_database(pool, n_queries=0, database_size=5)
        with pytest.raises(ValueError):
            build_query_database(pool, n_queries=5, database_size=3)
        with pytest.raises(ValueError):
            build_query_database(pool, n_queries=5, database_size=100)


class TestPerturbations:
    def test_downsample_rate(self):
        t = np.arange(4000, dtype=float).reshape(2000, 2)
        out = downsample(t, 0.3, np.random.default_rng(0))
        assert abs(len(out) / len(t) - 0.7) < 0.05

    def test_downsample_min_keep(self):
        t = np.arange(8, dtype=float).reshape(4, 2)
        out = downsample(t, 0.99, np.random.default_rng(1))
        assert len(out) >= 2

    def test_downsample_invalid_rate(self):
        with pytest.raises(ValueError):
            downsample(np.zeros((5, 2)), 1.0, np.random.default_rng(0))

    def test_distort_rate_and_bound(self):
        t = np.zeros((5000, 2))
        out = distort(t, 0.4, np.random.default_rng(2), radius=50.0)
        moved = (np.abs(out) > 1e-12).any(axis=1)
        assert abs(moved.mean() - 0.4) < 0.05
        assert np.abs(out).max() <= 50.0 + 1e-9

    def test_distort_zero_rate_identity(self):
        t = np.random.default_rng(3).standard_normal((20, 2))
        out = distort(t, 0.0, np.random.default_rng(4))
        np.testing.assert_array_equal(out, t)

    def test_perturb_instance_applies_to_all(self):
        pool = generate_city(TINY, 30, seed=5)
        instance = build_query_database(pool, n_queries=3, database_size=10,
                                        rng=np.random.default_rng(6))
        perturbed = perturb_instance(instance, "downsample", 0.3,
                                     np.random.default_rng(7))
        assert all(len(q2) <= len(q1) for q1, q2 in
                   zip(instance.queries, perturbed.queries))
        np.testing.assert_array_equal(perturbed.ground_truth, instance.ground_truth)
        with pytest.raises(KeyError):
            perturb_instance(instance, "bogus", 0.3, np.random.default_rng(8))


class TestSplits:
    def test_partition_sizes_and_disjointness(self):
        pool = [np.full((4, 2), float(i)) for i in range(100)]
        splits = partition(pool, n_train=40, n_test=30, n_downstream=10,
                           validation_fraction=0.1, rng=np.random.default_rng(0))
        assert len(splits.train) == 40
        assert len(splits.validation) == 4
        assert len(splits.test) == 30
        assert len(splits.downstream) == 10
        seen = [t[0, 0] for part in
                (splits.train, splits.validation, splits.test, splits.downstream)
                for t in part]
        assert len(seen) == len(set(seen)), "splits overlap"

    def test_partition_pool_too_small(self):
        with pytest.raises(ValueError):
            partition([np.zeros((4, 2))] * 10, n_train=8, n_test=4, n_downstream=0)

    def test_downstream_split_ratios(self):
        pool = [np.full((4, 2), float(i)) for i in range(100)]
        train, val, test = downstream_split(pool, rng=np.random.default_rng(1))
        assert len(train) == 70
        assert len(val) == 10
        assert len(test) == 20
