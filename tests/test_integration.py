"""End-to-end integration tests across the whole library.

These exercise the same paths as the benchmarks at an even smaller scale:
data generation → node2vec → contrastive pre-training → evaluation →
fine-tuning → indexing, plus determinism and failure-injection checks.
"""

import numpy as np
import pytest

from repro.core import HeuristicApproximator, load_pipeline, save_pipeline
from repro.datasets import perturb_instance
from repro.eval import (
    approximation_metrics,
    build_city_pipeline,
    evaluate_mean_rank,
    make_instance,
)
from repro.index import IVFFlatIndex
from repro.measures import get_measure


@pytest.fixture(scope="module")
def pipeline():
    """One small trained pipeline shared by the integration tests."""
    return build_city_pipeline("porto", n_trajectories=120, train_epochs=2,
                               grid_cells_per_side=24, seed=3)


@pytest.fixture(scope="module")
def instance(pipeline):
    return make_instance(pipeline.trajectories, n_queries=10,
                         database_size=60, seed=4)


class TestEndToEnd:
    def test_trained_model_near_perfect_mean_rank(self, pipeline, instance):
        rank = evaluate_mean_rank(pipeline.model, instance)
        assert rank <= 2.0, f"mean rank {rank} too far from 1"

    def test_beats_edr_under_downsampling(self, pipeline, instance):
        """The paper's robustness headline, miniature edition."""
        perturbed = perturb_instance(instance, "downsample", 0.3,
                                     np.random.default_rng(5))
        trajcl = evaluate_mean_rank(pipeline.model, perturbed)
        edr = evaluate_mean_rank(get_measure("edr"), perturbed)
        assert trajcl < edr

    def test_finetune_to_hausdorff(self, pipeline):
        trajectories = pipeline.trajectories
        approximator = HeuristicApproximator(pipeline.model, mode="all",
                                             rng=np.random.default_rng(6))
        measure = get_measure("hausdorff")
        approximator.fit(trajectories[:60], measure, epochs=4,
                         pairs_per_epoch=128, batch_size=32,
                         rng=np.random.default_rng(7))
        metrics = approximation_metrics(
            approximator, measure, trajectories[60:66], trajectories[60:110]
        )
        assert metrics["hr5"] > 0.2
        assert metrics["r5at20"] >= metrics["hr5"]

    def test_index_pipeline(self, pipeline):
        embeddings = pipeline.model.encode(pipeline.trajectories)
        index = IVFFlatIndex(embeddings.shape[1], n_lists=8, n_probe=8)
        index.train(embeddings, rng=np.random.default_rng(8))
        index.add(embeddings)
        _, neighbors = index.search(embeddings[:5], k=1)
        np.testing.assert_array_equal(neighbors[:, 0], np.arange(5))

    def test_checkpoint_roundtrip_full_pipeline(self, pipeline, tmp_path):
        path = str(tmp_path / "e2e.npz")
        save_pipeline(path, pipeline.model)
        restored = load_pipeline(path)
        original = pipeline.model.encode(pipeline.trajectories[:4])
        loaded = restored.encode(pipeline.trajectories[:4])
        np.testing.assert_allclose(original, loaded, atol=1e-12)


class TestDeterminism:
    def test_same_seed_same_pipeline(self):
        a = build_city_pipeline("xian", n_trajectories=40, train_epochs=1,
                                grid_cells_per_side=16, seed=11)
        b = build_city_pipeline("xian", n_trajectories=40, train_epochs=1,
                                grid_cells_per_side=16, seed=11)
        emb_a = a.model.encode(a.trajectories[:5])
        emb_b = b.model.encode(b.trajectories[:5])
        np.testing.assert_allclose(emb_a, emb_b, atol=1e-12)

    def test_different_seed_different_model(self):
        a = build_city_pipeline("xian", n_trajectories=40, train_epochs=1,
                                grid_cells_per_side=16, seed=11)
        c = build_city_pipeline("xian", n_trajectories=40, train_epochs=1,
                                grid_cells_per_side=16, seed=12)
        emb_a = a.model.encode(a.trajectories[:5])
        emb_c = c.model.encode(a.trajectories[:5])
        assert not np.allclose(emb_a, emb_c)


class TestFailureInjection:
    def test_encode_rejects_malformed_trajectory(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.model.encode([np.array([[1.0, 2.0, 3.0]])])

    def test_encode_rejects_nan_points(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.model.encode([np.array([[np.nan, 0.0], [1.0, 1.0]])])

    def test_unknown_city(self):
        with pytest.raises(KeyError):
            build_city_pipeline("atlantis", n_trajectories=10)

    def test_instance_needs_enough_pool(self, pipeline):
        with pytest.raises(ValueError):
            make_instance(pipeline.trajectories[:10], n_queries=5,
                          database_size=100)

    def test_truncated_checkpoint_rejected(self, pipeline, tmp_path):
        path = str(tmp_path / "broken.npz")
        save_pipeline(path, pipeline.model)
        # Corrupt: drop half the weight arrays.
        import numpy as _np

        state = dict(_np.load(path))
        keys = [k for k in state if k.startswith("model/")]
        for key in keys[: len(keys) // 2]:
            del state[key]
        _np.savez(path, **state)
        with pytest.raises(KeyError):
            load_pipeline(path)
