"""Tests for the heuristic similarity measures (Hausdorff, Fréchet, EDR, EDwP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.measures import (
    EDR,
    EDwP,
    Frechet,
    Hausdorff,
    available_measures,
    edr_distance,
    edwp_distance,
    frechet_distance,
    get_measure,
    hausdorff_distance,
)

RNG = np.random.default_rng(17)

traj_strategy = arrays(
    np.float64, st.tuples(st.integers(2, 15), st.just(2)),
    elements=st.floats(-1e3, 1e3, allow_nan=False),
)


def random_walk(n=20, step=10.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, 2)) * step, axis=0)


ALL_DISTANCES = [hausdorff_distance, frechet_distance, edr_distance, edwp_distance]


class TestSharedProperties:
    @pytest.mark.parametrize("dist", ALL_DISTANCES)
    def test_identity(self, dist):
        t = random_walk(15, seed=1)
        assert dist(t, t) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("dist", ALL_DISTANCES)
    def test_symmetry(self, dist):
        a, b = random_walk(12, seed=2), random_walk(17, seed=3)
        assert dist(a, b) == pytest.approx(dist(b, a), rel=1e-9)

    @pytest.mark.parametrize("dist", ALL_DISTANCES)
    def test_non_negative(self, dist):
        a, b = random_walk(10, seed=4), random_walk(10, seed=5)
        assert dist(a, b) >= 0.0

    @pytest.mark.parametrize("dist", ALL_DISTANCES)
    def test_translation_increases_distance(self, dist):
        a = random_walk(15, seed=6)
        near = a + 1.0
        far = a + 5000.0
        assert dist(a, far) > dist(a, near)

    @settings(max_examples=20, deadline=None)
    @given(traj_strategy, traj_strategy)
    def test_property_symmetry_hausdorff_frechet(self, a, b):
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))
        assert frechet_distance(a, b) == pytest.approx(frechet_distance(b, a))


class TestHausdorff:
    def test_known_value(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 3.0], [1.0, 3.0]])
        assert hausdorff_distance(a, b) == pytest.approx(3.0)

    def test_order_invariance(self):
        """Hausdorff treats trajectories as point sets."""
        a = random_walk(10, seed=7)
        shuffled = a[np.random.default_rng(0).permutation(len(a))]
        assert hausdorff_distance(a, shuffled) == pytest.approx(0.0)

    def test_asymmetric_coverage(self):
        # b covers a, plus a far-away point: directed distances differ.
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]])
        assert hausdorff_distance(a, b) == pytest.approx(99.0)

    def test_triangle_inequality_samples(self):
        for seed in range(5):
            a = random_walk(8, seed=3 * seed)
            b = random_walk(9, seed=3 * seed + 1)
            c = random_walk(10, seed=3 * seed + 2)
            assert hausdorff_distance(a, c) <= (
                hausdorff_distance(a, b) + hausdorff_distance(b, c) + 1e-9
            )


class TestFrechet:
    def test_known_value_parallel_lines(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        b = a + np.array([0.0, 2.0])
        assert frechet_distance(a, b) == pytest.approx(2.0)

    def test_at_least_hausdorff(self):
        """Discrete Fréchet upper-bounds Hausdorff for any pair."""
        for seed in range(8):
            a = random_walk(12, seed=seed)
            b = random_walk(15, seed=seed + 100)
            assert frechet_distance(a, b) >= hausdorff_distance(a, b) - 1e-9

    def test_order_sensitivity(self):
        """Unlike Hausdorff, Fréchet penalizes reversed traversal."""
        a = np.stack([np.linspace(0, 100, 20), np.zeros(20)], axis=1)
        reversed_a = a[::-1].copy()
        assert frechet_distance(a, reversed_a) > 50.0
        assert hausdorff_distance(a, reversed_a) == pytest.approx(0.0)

    def test_single_point_vs_line(self):
        point = np.array([[0.0, 0.0]])
        line = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert frechet_distance(point, line) == pytest.approx(10.0)


class TestEDR:
    def test_identical_is_zero(self):
        t = random_walk(10, seed=9)
        assert edr_distance(t, t, epsilon=1.0) == 0.0

    def test_completely_different_is_max_length(self):
        a = np.zeros((5, 2))
        b = np.full((7, 2), 1e6)
        assert edr_distance(a, b, epsilon=1.0) == 7.0

    def test_one_substitution(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        b = a.copy()
        b[1] += 500.0
        assert edr_distance(a, b, epsilon=1.0) == 1.0

    def test_length_difference_costs_insertions(self):
        a = np.stack([np.arange(5, dtype=float) * 1000, np.zeros(5)], axis=1)
        b = a[:3]
        assert edr_distance(a, b, epsilon=1.0) == 2.0

    def test_epsilon_controls_matching(self):
        a = random_walk(10, seed=10)
        b = a + 5.0
        strict = edr_distance(a, b, epsilon=0.1)
        lenient = edr_distance(a, b, epsilon=100.0)
        assert strict == 10.0
        assert lenient == 0.0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            edr_distance(random_walk(5), random_walk(5), epsilon=-1.0)
        with pytest.raises(ValueError):
            EDR(epsilon=-1.0)

    def test_bounded_by_max_length(self):
        for seed in range(5):
            a = random_walk(8, seed=seed)
            b = random_walk(13, seed=seed + 50)
            assert edr_distance(a, b) <= 13.0


class TestEDwP:
    def test_identical_is_zero(self):
        t = random_walk(10, seed=11)
        assert edwp_distance(t, t) == pytest.approx(0.0, abs=1e-9)

    def test_single_points(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert edwp_distance(a, b) == pytest.approx(5.0)

    def test_robust_to_downsampling(self):
        """EDwP's projections absorb resampling — the paper's Table IV story.

        A densified version of the same path must stay much closer (per
        EDwP) than a genuinely different path of equal point count.
        """
        base = np.stack([np.linspace(0, 1000, 11), np.zeros(11)], axis=1)
        dense = np.stack([np.linspace(0, 1000, 21), np.zeros(21)], axis=1)
        shifted = dense + np.array([0.0, 400.0])
        same_path = edwp_distance(base, dense)
        different_path = edwp_distance(base, shifted)
        assert same_path < different_path * 0.1

    def test_scale_sensitivity(self):
        a = random_walk(10, seed=12)
        assert edwp_distance(a, a + 2000.0) > edwp_distance(a, a + 10.0)


class TestVectorizedAgainstReference:
    """The vectorized DP rewrites must match the double-loop oracles exactly."""

    @settings(max_examples=40, deadline=None)
    @given(traj_strategy, traj_strategy)
    def test_property_edr_matches_reference(self, a, b):
        from repro.measures.edr import edr_distance_reference

        assert edr_distance(a, b, epsilon=50.0) == pytest.approx(
            edr_distance_reference(a, b, epsilon=50.0)
        )

    @settings(max_examples=40, deadline=None)
    @given(traj_strategy, traj_strategy)
    def test_property_frechet_matches_reference(self, a, b):
        from repro.measures.frechet import frechet_distance_reference

        assert frechet_distance(a, b) == pytest.approx(
            frechet_distance_reference(a, b)
        )

    @settings(max_examples=40, deadline=None)
    @given(traj_strategy, traj_strategy)
    def test_property_edwp_matches_reference(self, a, b):
        from repro.measures.edwp import edwp_distance_reference

        assert edwp_distance(a, b) == pytest.approx(
            edwp_distance_reference(a, b), rel=1e-9, abs=1e-9
        )

    def test_edwp_single_point_edge_cases(self):
        from repro.measures.edwp import edwp_distance_reference

        point = np.array([[1.0, 2.0]])
        line = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        assert edwp_distance(point, line) == pytest.approx(
            edwp_distance_reference(point, line)
        )
        assert edwp_distance(line, point) == pytest.approx(
            edwp_distance_reference(line, point)
        )


class TestRegistry:
    def test_available_measures(self):
        names = available_measures()
        assert {"hausdorff", "frechet", "edr", "edwp"} <= set(names)

    def test_get_measure_instances(self):
        assert isinstance(get_measure("hausdorff"), Hausdorff)
        assert isinstance(get_measure("frechet"), Frechet)
        assert isinstance(get_measure("edr"), EDR)
        assert isinstance(get_measure("edwp"), EDwP)

    def test_get_measure_kwargs(self):
        measure = get_measure("edr", epsilon=42.0)
        assert measure.epsilon == 42.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_measure("nope")

    def test_pairwise_matrix(self):
        trajs = [random_walk(8, seed=s) for s in range(4)]
        matrix = get_measure("hausdorff").pairwise(trajs[:2], trajs)
        assert matrix.shape == (2, 4)
        assert matrix[0, 0] == pytest.approx(0.0)
        assert matrix[1, 1] == pytest.approx(0.0)
        assert (matrix >= 0).all()
