"""Cross-module interop tests: measures/models accept every trajectory form."""

import numpy as np
import pytest

from repro.measures import available_measures, get_measure
from repro.trajectory import Trajectory


def walk(n=12, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, 2)) * 20, axis=0)


@pytest.mark.parametrize("name", ["hausdorff", "frechet", "edr", "edwp"])
class TestMeasureInputForms:
    def test_accepts_trajectory_objects(self, name):
        measure = get_measure(name)
        a, b = Trajectory(walk(10, 1)), Trajectory(walk(12, 2))
        assert measure.distance(a, b) == pytest.approx(
            measure.distance(a.points, b.points)
        )

    def test_accepts_nested_lists(self, name):
        measure = get_measure(name)
        a = walk(8, 3)
        assert measure.distance(a.tolist(), a.tolist()) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_bad_shapes(self, name):
        measure = get_measure(name)
        with pytest.raises(ValueError):
            measure.distance(np.zeros((3, 3)), walk(5))

    def test_registry_covers_class(self, name):
        assert name in available_measures()


class TestScaleBehaviour:
    """Distances must scale sensibly under uniform coordinate scaling."""

    @pytest.mark.parametrize("name", ["hausdorff", "frechet"])
    def test_metric_measures_scale_linearly(self, name):
        measure = get_measure(name)
        a, b = walk(10, 4), walk(12, 5)
        base = measure.distance(a, b)
        scaled = measure.distance(3.0 * a, 3.0 * b)
        assert scaled == pytest.approx(3.0 * base, rel=1e-9)

    def test_edr_is_scale_covariant_with_epsilon(self):
        a, b = walk(10, 6), walk(12, 7)
        base = get_measure("edr", epsilon=50.0).distance(a, b)
        scaled = get_measure("edr", epsilon=150.0).distance(3.0 * a, 3.0 * b)
        assert scaled == base

    @pytest.mark.parametrize("name", ["hausdorff", "frechet", "edr", "edwp"])
    def test_translation_invariance(self, name):
        measure = get_measure(name)
        a, b = walk(10, 8), walk(12, 9)
        offset = np.array([1234.5, -678.9])
        assert measure.distance(a + offset, b + offset) == pytest.approx(
            measure.distance(a, b), rel=1e-9
        )
