"""Tests for the TrajCL MoCo model, the negative queue, and the trainer."""

import numpy as np
import pytest

from repro.core import NegativeQueue, TrajCL, TrajCLConfig, TrajCLTrainer
from repro.core.model import FeatureEnrichment

from .conftest import make_trajectories


class TestNegativeQueue:
    def test_starts_empty(self):
        queue = NegativeQueue(8, 4)
        assert len(queue) == 0
        assert queue.negatives() is None

    def test_push_and_normalization(self):
        queue = NegativeQueue(8, 4)
        queue.push(np.array([[3.0, 0.0, 0.0, 0.0]]))
        negatives = queue.negatives()
        assert negatives.shape == (1, 4)
        np.testing.assert_allclose(np.linalg.norm(negatives[0]), 1.0)

    def test_fifo_overwrite(self):
        queue = NegativeQueue(3, 2)
        for value in range(5):
            queue.push(np.array([[float(value + 1), 0.0]]))
        negatives = queue.negatives()
        assert len(queue) == 3
        # all normalized to the same unit vector, but the buffer holds the
        # 3 most recent entries (positions rotate)
        assert negatives.shape == (3, 2)

    def test_zero_capacity_noop(self):
        queue = NegativeQueue(0, 4)
        queue.push(np.ones((2, 4)))
        assert queue.negatives() is None

    def test_shape_validation(self):
        queue = NegativeQueue(4, 4)
        with pytest.raises(ValueError):
            queue.push(np.ones((2, 3)))
        with pytest.raises(ValueError):
            NegativeQueue(-1, 4)

    @pytest.mark.parametrize("capacity", [1, 3, 7, 16])
    def test_vectorized_push_matches_per_row_reference(self, capacity):
        """The wrap-around slice assignment is bit-identical to pushing one
        row at a time (pointer, size and buffer contents)."""

        def reference_push(queue, vectors):
            vectors = np.asarray(vectors, dtype=np.float64)
            norms = np.linalg.norm(vectors, axis=1, keepdims=True)
            vectors = vectors / np.maximum(norms, 1e-8)
            for row in vectors:
                queue._buffer[queue._pointer] = row
                queue._pointer = (queue._pointer + 1) % queue.capacity
                queue._size = min(queue._size + 1, queue.capacity)

        rng = np.random.default_rng(0)
        fast = NegativeQueue(capacity, 4)
        slow = NegativeQueue(capacity, 4)
        for _ in range(40):
            batch = rng.standard_normal(
                (int(rng.integers(1, 2 * capacity + 3)), 4)
            )
            fast.push(batch)
            reference_push(slow, batch)
            assert fast._pointer == slow._pointer
            assert len(fast) == len(slow)
            np.testing.assert_allclose(fast._buffer, slow._buffer)


class TestTrajCLModel:
    def test_dim_mismatch_raises(self, small_setup):
        config, features, _ = small_setup
        bad_config = config.with_overrides(structural_dim=32)
        with pytest.raises(ValueError):
            TrajCL(features, bad_config)

    def test_momentum_branch_initialized_identically(self, small_model):
        online = small_model.encoder.state_dict()
        momentum = small_model.momentum_encoder.state_dict()
        for key in online:
            np.testing.assert_allclose(online[key], momentum[key])

    def test_momentum_params_excluded_from_training(self, small_model):
        trainable_ids = {id(p) for p in small_model.trainable_parameters()}
        for param in small_model.momentum_encoder.parameters():
            assert id(param) not in trainable_ids
            assert not param.requires_grad

    def test_momentum_update_moves_toward_online(self, small_model, small_setup):
        _, _, trajectories = small_setup
        # Perturb online branch, then EMA: momentum must move slightly.
        for param in small_model.encoder.parameters():
            param.data += 1.0
        before = {k: v.copy() for k, v in small_model.momentum_encoder.state_dict().items()}
        small_model.momentum_update()
        after = small_model.momentum_encoder.state_dict()
        m = small_model.config.momentum
        online = small_model.encoder.state_dict()
        for key in before:
            expected = m * before[key] + (1 - m) * online[key]
            np.testing.assert_allclose(after[key], expected, atol=1e-12)

    def test_contrastive_loss_scalar_and_queue_growth(self, small_model, small_setup):
        _, _, trajectories = small_setup
        batch = trajectories[:6]
        loss = small_model.contrastive_loss(batch, batch)
        assert loss.size == 1
        assert np.isfinite(loss.item())
        assert len(small_model.queue) == 6

    def test_contrastive_loss_no_queue_update_option(self, small_model, small_setup):
        _, _, trajectories = small_setup
        small_model.contrastive_loss(trajectories[:4], trajectories[:4],
                                     update_queue=False)
        assert len(small_model.queue) == 0

    def test_encode_shape_and_determinism(self, small_model, small_setup):
        _, _, trajectories = small_setup
        emb_a = small_model.encode(trajectories[:5])
        emb_b = small_model.encode(trajectories[:5])
        assert emb_a.shape == (5, small_model.encoder.output_dim)
        np.testing.assert_allclose(emb_a, emb_b)  # eval mode: no dropout noise

    def test_encode_batched_equals_single(self, small_model, small_setup):
        _, _, trajectories = small_setup
        full = small_model.encode(trajectories[:7], batch_size=3)
        single = small_model.encode(trajectories[:7], batch_size=100)
        np.testing.assert_allclose(full, single, atol=1e-10)

    def test_distance_matrix_properties(self, small_model, small_setup):
        _, _, trajectories = small_setup
        matrix = small_model.distance_matrix(trajectories[:3], trajectories[:5])
        assert matrix.shape == (3, 5)
        assert (matrix >= 0).all()
        # self-distance 0 on the diagonal when query == database entry
        np.testing.assert_allclose(np.diag(matrix[:, :3]), 0.0, atol=1e-9)

    def test_encoder_variants_construct(self, small_setup):
        config, features, _ = small_setup
        for variant in ["dual", "msm", "concat"]:
            model = TrajCL(features, config, encoder_variant=variant,
                           rng=np.random.default_rng(3))
            emb = model.encode(make_trajectories(3, seed=9))
            assert emb.shape[0] == 3


class TestTrainer:
    def test_loss_improves_once_queue_is_full(self, small_setup):
        """Raw InfoNCE rises while the queue fills (more negatives = higher
        loss floor); once full, continued training must reduce it."""
        config, features, trajectories = small_setup
        config = config.with_overrides(max_epochs=6, queue_size=32, batch_size=8)
        model = TrajCL(features, config, rng=np.random.default_rng(4))
        trainer = TrajCLTrainer(model, rng=np.random.default_rng(5))
        history = trainer.fit(trajectories)
        assert history.epochs_run >= 4
        assert all(np.isfinite(history.losses))
        # Queue (32) fills during epoch 2 (32 samples/epoch); compare after.
        assert min(history.losses[2:]) <= history.losses[1] + 0.25

    def test_history_records_times(self, small_setup):
        config, features, trajectories = small_setup
        model = TrajCL(features, config.with_overrides(max_epochs=1),
                       rng=np.random.default_rng(6))
        history = TrajCLTrainer(model).fit(trajectories[:8])
        assert len(history.epoch_seconds) == 1
        assert history.epoch_seconds[0] > 0
        assert history.total_seconds == pytest.approx(sum(history.epoch_seconds))

    def test_callback_invoked_per_epoch(self, small_setup):
        config, features, trajectories = small_setup
        model = TrajCL(features, config.with_overrides(max_epochs=2),
                       rng=np.random.default_rng(7))
        calls = []
        TrajCLTrainer(model).fit(
            trajectories[:8], callback=lambda e, loss: calls.append((e, loss))
        )
        assert [c[0] for c in calls] == [0, 1]

    def test_empty_training_set_raises(self, small_setup):
        config, features, _ = small_setup
        model = TrajCL(features, config, rng=np.random.default_rng(8))
        with pytest.raises(ValueError):
            TrajCLTrainer(model).fit([])

    def test_early_stopping(self, small_setup):
        config, features, trajectories = small_setup
        config = config.with_overrides(max_epochs=30, early_stop_patience=1,
                                       learning_rate=1e-12)
        model = TrajCL(features, config, rng=np.random.default_rng(9))
        history = TrajCLTrainer(model).fit(trajectories[:8])
        # lr=0 -> no improvement -> patience triggers quickly
        assert history.stopped_early
        assert history.epochs_run <= 5

    def test_make_views_uses_configured_augmentations(self, small_setup):
        config, features, trajectories = small_setup
        config = config.with_overrides(augmentations=("mask", "mask"),
                                       mask_ratio=0.5)
        model = TrajCL(features, config, rng=np.random.default_rng(10))
        trainer = TrajCLTrainer(model, rng=np.random.default_rng(11))
        view_a, view_b = trainer.make_views(trajectories[0])
        n = len(trajectories[0])
        assert len(view_a) == n // 2
        assert len(view_b) == n // 2

    def test_similar_trajectories_embed_closer_after_training(self, small_setup):
        """The headline property: views of the same trajectory end up closer
        than unrelated trajectories in embedding space."""
        config, features, trajectories = small_setup
        config = config.with_overrides(max_epochs=10, queue_size=64, batch_size=8)
        model = TrajCL(features, config, rng=np.random.default_rng(12))
        trainer = TrajCLTrainer(model, rng=np.random.default_rng(13))
        trainer.fit(trajectories)

        rng = np.random.default_rng(14)
        from repro.core.augmentation import point_mask

        anchors = trajectories[:10]
        views = [point_mask(t, rng, ratio=0.3) for t in anchors]
        emb_anchor = model.encode(anchors)
        emb_view = model.encode(views)
        distances = np.abs(emb_anchor[:, None] - emb_view[None, :]).sum(axis=2)
        positive = float(np.diag(distances).mean())
        negative = float(distances[~np.eye(10, dtype=bool)].mean())
        assert positive < negative, (
            f"positive distance {positive:.3f} not below negatives {negative:.3f}"
        )
        top1 = float((distances.argmin(axis=1) == np.arange(10)).mean())
        assert top1 >= 0.5, f"view retrieval top-1 only {top1:.2f}"
