"""Tests for TrajCLConfig validation and derived configurations."""

import pytest

from repro.core import TrajCLConfig


class TestValidation:
    def test_defaults_match_paper_settings(self):
        config = TrajCLConfig()
        # The behavioural parameters the paper fixes (§IV-A, §V-A).
        assert config.num_heads == 4
        assert config.num_layers == 2
        assert config.num_spatial_layers == 2
        assert config.cell_size == 100.0
        assert config.augmentations == ("mask", "truncate")
        assert config.mask_ratio == 0.3
        assert config.truncate_keep == 0.7
        assert config.shift_radius == 100.0
        assert config.simplify_epsilon == 100.0
        assert config.momentum == 0.999
        assert config.learning_rate == 1e-3
        assert config.lr_step_epochs == 5
        assert config.lr_gamma == 0.5

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            TrajCLConfig(structural_dim=30, num_heads=4)
        with pytest.raises(ValueError):
            TrajCLConfig(spatial_dim=6, num_heads=4)

    def test_ratio_bounds(self):
        with pytest.raises(ValueError):
            TrajCLConfig(truncate_keep=1.0)
        with pytest.raises(ValueError):
            TrajCLConfig(mask_ratio=1.0)
        with pytest.raises(ValueError):
            TrajCLConfig(momentum=1.0)

    def test_with_overrides_revalidates(self):
        config = TrajCLConfig()
        with pytest.raises(ValueError):
            config.with_overrides(structural_dim=33)

    def test_with_overrides_is_functional(self):
        config = TrajCLConfig()
        updated = config.with_overrides(queue_size=64)
        assert updated.queue_size == 64
        assert config.queue_size != 64 or updated is not config

    def test_paper_scale_profile(self):
        paper = TrajCLConfig.paper_scale()
        assert paper.structural_dim == 256
        assert paper.max_len == 200
        assert paper.queue_size == 2048
        assert paper.max_epochs == 20
