"""Tests for pointwise feature enrichment (paper §IV-B)."""

import numpy as np
import pytest

from repro.core import FeatureEnrichment, sinusoidal_position_encoding, spatial_features
from repro.trajectory import Grid


def make_grid():
    return Grid(0, 0, 1000, 1000, cell_size=100)


def walk(n=20, seed=0, scale=40.0, offset=500.0):
    rng = np.random.default_rng(seed)
    return np.clip(
        np.cumsum(rng.standard_normal((n, 2)) * scale, axis=0) + offset, 1, 999
    )


class TestPositionEncoding:
    def test_shape_and_range(self):
        table = sinusoidal_position_encoding(50, 16)
        assert table.shape == (50, 16)
        assert (np.abs(table) <= 1.0 + 1e-12).all()

    def test_eq9_values(self):
        """Spot-check Eq. 9: even j -> sin(i/10000^{j/d}), odd -> cos(.../{(j-1)/d})."""
        d = 8
        table = sinusoidal_position_encoding(10, d)
        i, j = 3, 4
        assert table[i, j] == pytest.approx(np.sin(i / 10000 ** (j / d)))
        i, j = 5, 3
        assert table[i, j] == pytest.approx(np.cos(i / 10000 ** ((j - 1) / d)))

    def test_first_row_alternates_zero_one(self):
        table = sinusoidal_position_encoding(4, 6)
        np.testing.assert_allclose(table[0, 0::2], 0.0)
        np.testing.assert_allclose(table[0, 1::2], 1.0)

    def test_distinct_positions(self):
        table = sinusoidal_position_encoding(100, 16)
        assert len(np.unique(table.round(9), axis=0)) == 100


class TestSpatialFeatures:
    def test_shape(self):
        grid = make_grid()
        feats = spatial_features(walk(15), grid)
        assert feats.shape == (15, 4)

    def test_coordinates_normalized(self):
        grid = make_grid()
        feats = spatial_features(walk(25, seed=1), grid)
        assert (feats[:, 0] >= 0).all() and (feats[:, 0] <= 1).all()
        assert (feats[:, 1] >= 0).all() and (feats[:, 1] <= 1).all()

    def test_straight_line_radian_is_one(self):
        """Interior angles of a straight line are π -> normalized to 1."""
        grid = make_grid()
        line = np.stack([np.linspace(100, 900, 10), np.full(10, 500.0)], axis=1)
        feats = spatial_features(line, grid)
        np.testing.assert_allclose(feats[:, 2], 1.0)

    def test_right_angle_half(self):
        grid = make_grid()
        corner = np.array([[100.0, 100.0], [200.0, 100.0], [200.0, 200.0]])
        feats = spatial_features(corner, grid)
        assert feats[1, 2] == pytest.approx(0.5)

    def test_segment_length_feature(self):
        grid = make_grid()  # cell 100
        pts = np.array([[0.0, 0.0], [100.0, 0.0], [300.0, 0.0]])
        feats = spatial_features(pts, grid)
        assert feats[0, 3] == pytest.approx(1.0)    # first: only next segment
        assert feats[1, 3] == pytest.approx(1.5)    # mean(100, 200)/100
        assert feats[2, 3] == pytest.approx(2.0)    # last: only prev segment

    def test_single_point(self):
        grid = make_grid()
        feats = spatial_features(np.array([[500.0, 500.0]]), grid)
        assert feats.shape == (1, 4)
        assert feats[0, 2] == pytest.approx(1.0)
        assert feats[0, 3] == pytest.approx(0.0)


class TestFeatureEnrichment:
    def make_enrichment(self, max_len=32, dim=8):
        grid = make_grid()
        rng = np.random.default_rng(0)
        table = rng.standard_normal((grid.n_cells, dim))
        return FeatureEnrichment(grid, table, max_len=max_len), table, grid

    def test_encode_one_shapes(self):
        enrichment, _, _ = self.make_enrichment()
        t_mat, s_mat = enrichment.encode_one(walk(20))
        assert t_mat.shape == (20, 8)
        assert s_mat.shape == (20, 4)

    def test_structural_uses_cell_embedding_plus_pe(self):
        enrichment, table, grid = self.make_enrichment()
        pts = walk(5, seed=3)
        t_mat, _ = enrichment.encode_one(pts)
        cells = grid.cell_of(pts)
        pe = sinusoidal_position_encoding(enrichment.max_len, 8)
        np.testing.assert_allclose(t_mat, table[cells] + pe[:5])

    def test_truncation_to_max_len(self):
        enrichment, _, _ = self.make_enrichment(max_len=10)
        t_mat, s_mat = enrichment.encode_one(walk(50))
        assert len(t_mat) == 10 and len(s_mat) == 10

    def test_encode_batch_padding(self):
        enrichment, _, _ = self.make_enrichment(max_len=16)
        batch = [walk(5, seed=1), walk(12, seed=2)]
        structural, spatial, mask, lengths = enrichment.encode_batch(batch)
        assert structural.shape == (2, 16, 8)
        assert spatial.shape == (2, 16, 4)
        np.testing.assert_array_equal(lengths, [5, 12])
        assert mask[0, 5:].all() and not mask[0, :5].any()
        np.testing.assert_allclose(structural[0, 5:], 0.0)
        np.testing.assert_allclose(spatial[1, 12:], 0.0)

    def test_empty_batch_raises(self):
        enrichment, _, _ = self.make_enrichment()
        with pytest.raises(ValueError):
            enrichment.encode_batch([])

    def test_vectorized_batch_matches_encode_one(self):
        """The batched featurization (one pass over the concatenated
        points) must reproduce the per-trajectory reference exactly."""
        enrichment, _, _ = self.make_enrichment(max_len=16)
        batch = [walk(5, seed=1), walk(12, seed=2),
                 np.array([[500.0, 500.0]]),            # single point
                 np.array([[100.0, 100.0], [180.0, 240.0]]),  # two points
                 walk(30, seed=3)]                      # truncated to 16
        structural, spatial, mask, lengths = enrichment.encode_batch(batch)
        for i, trajectory in enumerate(batch):
            t_mat, s_mat = enrichment.encode_one(trajectory)
            n = len(t_mat)
            assert lengths[i] == n
            np.testing.assert_array_equal(structural[i, :n], t_mat)
            np.testing.assert_array_equal(spatial[i, :n], s_mat)
            np.testing.assert_allclose(structural[i, n:], 0.0)
            np.testing.assert_allclose(spatial[i, n:], 0.0)
            assert not mask[i, :n].any() and mask[i, n:].all()

    def test_pad_len_narrows_batch(self):
        enrichment, _, _ = self.make_enrichment(max_len=16)
        batch = [walk(5, seed=1), walk(8, seed=2)]
        structural, spatial, mask, lengths = enrichment.encode_batch(
            batch, pad_len=8
        )
        assert structural.shape == (2, 8, 8)
        assert spatial.shape == (2, 8, 4)
        assert mask.shape == (2, 8)
        # Valid positions identical to the max_len padding.
        full_t, full_s, _, _ = enrichment.encode_batch(batch)
        np.testing.assert_array_equal(structural, full_t[:, :8])
        np.testing.assert_array_equal(spatial, full_s[:, :8])

    def test_pad_len_validation(self):
        enrichment, _, _ = self.make_enrichment(max_len=16)
        batch = [walk(10, seed=1)]
        with pytest.raises(ValueError):
            enrichment.encode_batch(batch, pad_len=9)   # shorter than data
        with pytest.raises(ValueError):
            enrichment.encode_batch(batch, pad_len=17)  # beyond the PE table

    def test_batch_rejects_malformed_trajectories(self):
        enrichment, _, _ = self.make_enrichment()
        with pytest.raises(ValueError):
            enrichment.encode_batch([np.zeros((4, 3))])
        with pytest.raises(ValueError):
            enrichment.encode_batch([np.empty((0, 2))])
        with pytest.raises(ValueError):
            enrichment.encode_batch([np.array([[np.inf, 1.0], [0.0, 0.0]])])

    def test_rejects_non_finite_beyond_max_len(self):
        """Validation must match as_points: a NaN after the truncation
        point still rejects the trajectory (fast/reference parity)."""
        enrichment, _, _ = self.make_enrichment(max_len=4)
        bad = np.zeros((6, 2)) + 500.0
        bad[5] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            enrichment.encode_batch([bad])

    def test_wrong_cell_table_shape(self):
        grid = make_grid()
        with pytest.raises(ValueError):
            FeatureEnrichment(grid, np.zeros((3, 8)))

    def test_max_len_validation(self):
        grid = make_grid()
        with pytest.raises(ValueError):
            FeatureEnrichment(grid, np.zeros((grid.n_cells, 8)), max_len=1)
