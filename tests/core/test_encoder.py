"""Tests for DualMSM and the DualSTB encoder (paper §IV-C)."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import ConcatSTB, DualMSM, DualSTB, VanillaSTB, build_encoder

RNG = np.random.default_rng(71)


def rand_streams(batch=2, length=6, dt=16, ds=4):
    structural = nn.Tensor(RNG.standard_normal((batch, length, dt)), requires_grad=True)
    spatial = nn.Tensor(RNG.standard_normal((batch, length, ds)), requires_grad=True)
    return structural, spatial


class TestDualMSM:
    def make(self, dt=16, ds=4, heads=4, dropout=0.0):
        return DualMSM(dt, ds, heads, num_spatial_layers=2, dropout=dropout,
                       rng=np.random.default_rng(0))

    def test_output_shapes(self):
        msm = self.make()
        msm.eval()
        structural, spatial = rand_streams()
        c_ts, s_hidden = msm(structural, spatial)
        assert c_ts.shape == (2, 6, 16)
        assert s_hidden.shape == (2, 6, 4)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            DualMSM(15, 4, 4)
        with pytest.raises(ValueError):
            DualMSM(16, 5, 4)

    def test_gamma_is_learnable_and_fuses_spatial(self):
        """With γ=0 the output must equal pure structural attention."""
        msm = self.make()
        msm.eval()
        structural, spatial = rand_streams()
        out_default, _ = msm(structural.detach(), spatial.detach())

        msm.gamma.data[...] = 0.0
        out_zero, _ = msm(structural.detach(), spatial.detach())
        assert not np.allclose(out_default.data, out_zero.data), (
            "spatial attention must influence the fused output when γ≠0"
        )

    def test_gamma_receives_gradient(self):
        msm = self.make()
        structural, spatial = rand_streams()
        c_ts, _ = msm(structural, spatial)
        (c_ts ** 2).sum().backward()
        assert msm.gamma.grad is not None
        assert abs(float(msm.gamma.grad)) > 0

    def test_spatial_branch_parameters_exist(self):
        msm = self.make()
        names = [n for n, _ in msm.named_parameters()]
        assert any(n.startswith("spatial_encoder.layers.1") for n in names), (
            "spatial branch must stack multiple vanilla layers (paper: two)"
        )

    def test_padding_mask_respected(self):
        msm = self.make()
        msm.eval()
        dt, ds = 16, 4
        x = RNG.standard_normal((1, 4, dt))
        s = RNG.standard_normal((1, 4, ds))
        padded_x = np.concatenate([x, np.zeros((1, 2, dt))], axis=1)
        padded_s = np.concatenate([s, np.zeros((1, 2, ds))], axis=1)
        mask = np.array([[False] * 4 + [True] * 2])
        out_short, _ = msm(nn.Tensor(x), nn.Tensor(s))
        out_padded, _ = msm(nn.Tensor(padded_x), nn.Tensor(padded_s),
                            key_padding_mask=mask)
        np.testing.assert_allclose(out_padded.data[:, :4], out_short.data, atol=1e-10)


class TestDualSTB:
    def make(self, **kwargs):
        defaults = dict(structural_dim=16, spatial_dim=4, num_heads=4,
                        num_layers=2, num_spatial_layers=2, dropout=0.0,
                        rng=np.random.default_rng(0))
        defaults.update(kwargs)
        return DualSTB(**defaults)

    def test_embedding_shape(self):
        encoder = self.make()
        encoder.eval()
        structural, spatial = rand_streams()
        h = encoder(structural, spatial)
        assert h.shape == (2, 16)

    def test_accepts_numpy_inputs(self):
        encoder = self.make()
        encoder.eval()
        h = encoder(RNG.standard_normal((2, 6, 16)), RNG.standard_normal((2, 6, 4)))
        assert h.shape == (2, 16)

    def test_lengths_exclude_padding_from_pool(self):
        encoder = self.make()
        encoder.eval()
        x = RNG.standard_normal((1, 4, 16))
        s = RNG.standard_normal((1, 4, 4))
        padded_x = np.concatenate([x, 7.0 * np.ones((1, 3, 16))], axis=1)
        padded_s = np.concatenate([s, 7.0 * np.ones((1, 3, 4))], axis=1)
        mask = np.array([[False] * 4 + [True] * 3])
        h_short = encoder(nn.Tensor(x), nn.Tensor(s), lengths=np.array([4]))
        h_padded = encoder(nn.Tensor(padded_x), nn.Tensor(padded_s),
                           key_padding_mask=mask, lengths=np.array([4]))
        np.testing.assert_allclose(h_padded.data, h_short.data, atol=1e-10)

    def test_all_live_parameters_receive_gradients(self):
        """Every parameter gets a gradient except the known dead tail.

        In the final DualSTB layer, the spatial branch's propagated hidden
        state goes nowhere (only its attention matrix A_s enters Eq. 15),
        so the value/output/norm/FFN weights of that branch's last internal
        layer legitimately receive no gradient.
        """
        encoder = self.make(num_layers=2)
        structural, spatial = rand_streams()
        h = encoder(structural, spatial)
        (h ** 2).sum().backward()
        missing = [n for n, p in encoder.named_parameters() if p.grad is None]
        dead_prefix = "layers.1.dual_msm.spatial_encoder.layers.1."
        for name in missing:
            assert name.startswith(dead_prefix), f"unexpected dead parameter {name}"
            assert "w_query" not in name and "w_key" not in name, (
                f"{name} feeds A_s and must receive gradients"
            )

    def test_last_layer_parameters_subset(self):
        encoder = self.make(num_layers=3)
        last = {id(p) for p in encoder.last_layer_parameters()}
        everything = {id(p) for p in encoder.parameters()}
        assert last < everything
        assert len(last) == len(encoder.layers[2].parameters())

    def test_layer_count_configurable(self):
        assert len(self.make(num_layers=1).layers) == 1
        assert len(self.make(num_layers=4).layers) == 4


class TestAblationVariants:
    def test_vanilla_ignores_spatial(self):
        encoder = VanillaSTB(16, 4, num_heads=4, num_layers=1, dropout=0.0,
                             rng=np.random.default_rng(0))
        encoder.eval()
        structural = nn.Tensor(RNG.standard_normal((2, 5, 16)))
        spatial_a = nn.Tensor(RNG.standard_normal((2, 5, 4)))
        spatial_b = nn.Tensor(RNG.standard_normal((2, 5, 4)))
        h_a = encoder(structural, spatial_a)
        h_b = encoder(structural, spatial_b)
        np.testing.assert_allclose(h_a.data, h_b.data)

    def test_concat_uses_spatial(self):
        encoder = ConcatSTB(16, 4, num_heads=4, num_layers=1, dropout=0.0,
                            rng=np.random.default_rng(0))
        encoder.eval()
        structural = nn.Tensor(RNG.standard_normal((2, 5, 16)))
        spatial_a = nn.Tensor(RNG.standard_normal((2, 5, 4)))
        spatial_b = nn.Tensor(RNG.standard_normal((2, 5, 4)))
        assert not np.allclose(
            encoder(structural, spatial_a).data, encoder(structural, spatial_b).data
        )

    def test_concat_output_dim(self):
        encoder = ConcatSTB(16, 4, num_heads=4, num_layers=1,
                            rng=np.random.default_rng(0))
        assert encoder.output_dim == 20

    def test_concat_divisibility_check(self):
        with pytest.raises(ValueError):
            ConcatSTB(16, 5, num_heads=4)

    def test_build_encoder_factory(self):
        kwargs = dict(structural_dim=16, spatial_dim=4, num_heads=4, num_layers=1,
                      rng=np.random.default_rng(0))
        assert isinstance(build_encoder("dual", num_spatial_layers=1, **kwargs), DualSTB)
        assert isinstance(build_encoder("msm", **kwargs), VanillaSTB)
        assert isinstance(build_encoder("concat", **kwargs), ConcatSTB)
        with pytest.raises(KeyError):
            build_encoder("bogus", **kwargs)
