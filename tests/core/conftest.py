"""Shared fixtures for the TrajCL core tests: a tiny trained-free setup."""

import numpy as np
import pytest

from repro.core import FeatureEnrichment, TrajCL, TrajCLConfig
from repro.trajectory import Grid


def make_trajectories(n=24, seed=0, min_pts=20, max_pts=40):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        length = int(rng.integers(min_pts, max_pts + 1))
        out.append(
            np.cumsum(rng.standard_normal((length, 2)) * 60, axis=0) + 3000.0
        )
    return out


@pytest.fixture(scope="module")
def small_setup():
    """(config, features, trajectories) with random (non-node2vec) cell table.

    Cell embeddings are unit-scale: they must be comparable in magnitude to
    the sinusoidal position encoding added on top, as node2vec vectors are,
    or position information drowns the structural signal.
    """
    trajectories = make_trajectories(n=32)
    grid = Grid.covering(trajectories, cell_size=250)
    config = TrajCLConfig(
        structural_dim=16,
        max_len=40,
        projection_dim=8,
        queue_size=64,
        batch_size=8,
        max_epochs=2,
        dropout=0.0,
        momentum=0.9,  # paper uses 0.999; small-scale tests need faster EMA
    )
    rng = np.random.default_rng(1)
    cell_embeddings = rng.standard_normal((grid.n_cells, config.structural_dim))
    features = FeatureEnrichment(grid, cell_embeddings, max_len=config.max_len)
    return config, features, trajectories


@pytest.fixture()
def small_model(small_setup):
    config, features, _ = small_setup
    return TrajCL(features, config, rng=np.random.default_rng(2))
