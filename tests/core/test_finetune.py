"""Tests for fine-tuning TrajCL to approximate heuristic measures (§V-F)."""

import numpy as np
import pytest

from repro.core import HeuristicApproximator, TrajCL
from repro.measures import Hausdorff

from .conftest import make_trajectories


@pytest.fixture()
def approximator(small_model):
    return HeuristicApproximator(small_model, mode="last_layer",
                                 rng=np.random.default_rng(0))


class TestConstruction:
    def test_invalid_mode(self, small_model):
        with pytest.raises(ValueError):
            HeuristicApproximator(small_model, mode="bogus")

    def test_last_layer_mode_freezes_early_layers(self, small_model):
        approx = HeuristicApproximator(small_model, mode="last_layer")
        last = {id(p) for p in small_model.encoder.last_layer_parameters()}
        for param in small_model.encoder.parameters():
            if id(param) in last:
                assert param.requires_grad
            else:
                assert not param.requires_grad

    def test_all_mode_unfreezes_everything(self, small_model):
        HeuristicApproximator(small_model, mode="all")
        assert all(p.requires_grad for p in small_model.encoder.parameters())

    def test_head_only_mode(self, small_model):
        approx = HeuristicApproximator(small_model, mode="head_only")
        assert all(not p.requires_grad for p in small_model.encoder.parameters())
        assert len(approx.trainable_parameters()) == len(approx.mlp.parameters())

    def test_mlp_is_two_layers_of_width_d(self, small_model):
        """Paper: 'a two-layer MLP where the size of each layer is the same as d'."""
        approx = HeuristicApproximator(small_model)
        d = small_model.encoder.output_dim
        weights = [p for n, p in approx.mlp.named_parameters() if n.endswith("weight")]
        assert len(weights) == 2
        assert all(w.shape == (d, d) for w in weights)


class TestTraining:
    def test_fit_reduces_mse(self, approximator, small_setup):
        _, _, trajectories = small_setup
        history = approximator.fit(
            trajectories, Hausdorff(), epochs=5, pairs_per_epoch=64,
            batch_size=16, rng=np.random.default_rng(1),
        )
        assert len(history.losses) == 5
        assert history.losses[-1] < history.losses[0]

    def test_fit_needs_pairs(self, approximator):
        with pytest.raises(ValueError):
            approximator.fit([make_trajectories(1)[0]], Hausdorff())

    def test_target_scale_recorded(self, approximator, small_setup):
        _, _, trajectories = small_setup
        approximator.fit(trajectories, Hausdorff(), epochs=1, pairs_per_epoch=32,
                         rng=np.random.default_rng(2))
        assert approximator.target_scale > 0

    def test_distance_matrix_shape_and_scale(self, approximator, small_setup):
        _, _, trajectories = small_setup
        approximator.fit(trajectories, Hausdorff(), epochs=2, pairs_per_epoch=64,
                         rng=np.random.default_rng(3))
        matrix = approximator.distance_matrix(trajectories[:3], trajectories[:6])
        assert matrix.shape == (3, 6)
        assert (matrix >= 0).all()
        np.testing.assert_allclose(np.diag(matrix[:, :3]), 0.0, atol=1e-8)

    def test_approximation_correlates_with_target(self, small_model, small_setup):
        """After fine-tuning, predicted distances should rank pairs roughly
        like the heuristic (the substance of Table X)."""
        _, _, trajectories = small_setup
        approx = HeuristicApproximator(small_model, mode="all",
                                       rng=np.random.default_rng(4))
        measure = Hausdorff()
        approx.fit(trajectories, measure, epochs=12, pairs_per_epoch=256,
                   batch_size=32, lr=2e-3, rng=np.random.default_rng(5))

        queries = trajectories[:4]
        database = trajectories[4:20]
        predicted = approx.distance_matrix(queries, database)
        actual = measure.pairwise(queries, database)
        # Spearman rank correlation per query row.
        from scipy.stats import spearmanr

        correlations = [
            spearmanr(predicted[i], actual[i]).statistic for i in range(len(queries))
        ]
        assert np.mean(correlations) > 0.4, f"rank correlation too low: {correlations}"
