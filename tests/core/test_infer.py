"""Parity suite for the autograd-free inference engine (fast encode path).

Covers the acceptance bars of the engine: float64 near-bit-exact /
float32 ~1e-5-relative parity against the reference Tensor-graph encoder
for every Fig. 7 encoder variant, invariance to length bucketing (input
order and chunking must not change embeddings), recompilation after
weight updates, and the chunked L1 distance helper.
"""

import numpy as np
import pytest

from repro.core import (
    InferenceEncoder,
    TrajCL,
    chunked_l1_distances,
)
from repro.core.infer import resolve_dtype

from .conftest import make_trajectories


@pytest.fixture(scope="module")
def mixed_trajectories():
    """Lengths from 1 to ~50 so bucketing and truncation are exercised."""
    trajectories = make_trajectories(n=30, seed=4, min_pts=2, max_pts=50)
    trajectories.append(np.array([[3000.0, 3000.0]]))  # single point
    return trajectories


def make_model(small_setup, variant="dual"):
    config, features, _ = small_setup
    return TrajCL(features, config, encoder_variant=variant,
                  rng=np.random.default_rng(7))


class TestParity:
    @pytest.mark.parametrize("variant", ["dual", "msm", "concat"])
    def test_float64_near_bit_exact(self, small_setup, mixed_trajectories,
                                    variant):
        model = make_model(small_setup, variant)
        reference = model.encode(mixed_trajectories, fast=False)
        fast = model.encode(mixed_trajectories, fast=True, dtype="float64")
        assert fast.dtype == np.float64
        np.testing.assert_allclose(fast, reference, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("variant", ["dual", "msm", "concat"])
    def test_float32_within_1e5_relative(self, small_setup,
                                         mixed_trajectories, variant):
        model = make_model(small_setup, variant)
        reference = model.encode(mixed_trajectories, fast=False)
        fast = model.encode(mixed_trajectories, fast=True, dtype="float32")
        assert fast.dtype == np.float32
        scale = np.abs(reference).max()
        np.testing.assert_allclose(fast, reference, rtol=1e-4,
                                   atol=1e-5 * scale)
        assert np.abs(fast - reference).max() <= 1e-5 * scale

    def test_default_encode_routes_through_engine(self, small_setup,
                                                  mixed_trajectories):
        model = make_model(small_setup)
        default = model.encode(mixed_trajectories)
        reference = model.encode(mixed_trajectories, fast=False)
        # Default is the fast float64 engine: near-bit-exact, not identical.
        np.testing.assert_allclose(default, reference, rtol=1e-10, atol=1e-12)
        assert "float64" in model._inference_cache

    def test_from_model_rejects_unknown_variant(self, small_setup):
        model = make_model(small_setup)
        model.encoder_variant = "custom"
        with pytest.raises(ValueError, match="unsupported encoder variant"):
            InferenceEncoder.from_model(model)

    def test_unknown_variant_falls_back_to_reference(self, small_setup,
                                                     mixed_trajectories):
        model = make_model(small_setup)
        expected = model.encode(mixed_trajectories, fast=False)
        model.encoder_variant = "custom"
        assert model.inference_encoder() is None
        out = model.encode(mixed_trajectories)  # fast requested, falls back
        np.testing.assert_allclose(out, expected, atol=1e-12)


class TestBucketing:
    def test_permutation_invariance(self, small_setup, mixed_trajectories):
        """Shuffling the batch must return the same embedding per id even
        though the length buckets regroup completely."""
        model = make_model(small_setup)
        base = model.encode(mixed_trajectories, batch_size=8)
        perm = np.random.default_rng(0).permutation(len(mixed_trajectories))
        shuffled = model.encode([mixed_trajectories[i] for i in perm],
                                batch_size=8)
        np.testing.assert_allclose(shuffled, base[perm], rtol=1e-9,
                                   atol=1e-12)

    def test_batch_size_invariance(self, small_setup, mixed_trajectories):
        model = make_model(small_setup)
        whole = model.encode(mixed_trajectories, batch_size=1024)
        chunked = model.encode(mixed_trajectories, batch_size=3)
        np.testing.assert_allclose(whole, chunked, rtol=1e-9, atol=1e-12)

    def test_single_trajectory(self, small_setup, mixed_trajectories):
        model = make_model(small_setup)
        batch = model.encode(mixed_trajectories)
        one = model.encode(mixed_trajectories[:1])
        np.testing.assert_allclose(one[0], batch[0], rtol=1e-9, atol=1e-12)


class TestEngineLifecycle:
    def test_engine_cached_until_weights_change(self, small_setup,
                                                mixed_trajectories):
        model = make_model(small_setup)
        model.encode(mixed_trajectories)
        first = model._inference_cache["float64"]
        model.encode(mixed_trajectories)
        assert model._inference_cache["float64"] is first  # cache hit

        # An in-place weight update (what the optimizer does) must
        # invalidate the compiled engine and change the embeddings.
        before = model.encode(mixed_trajectories)
        param = model.encoder.parameters()[0]
        param.data += 0.05
        after = model.encode(mixed_trajectories)
        assert model._inference_cache["float64"] is not first
        assert not np.allclose(before, after)
        np.testing.assert_allclose(
            after, model.encode(mixed_trajectories, fast=False),
            rtol=1e-10, atol=1e-12,
        )

    def test_dtype_resolution(self):
        assert resolve_dtype(None) == np.float64
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64
        with pytest.raises(ValueError):
            resolve_dtype("int32")
        with pytest.raises(ValueError):
            resolve_dtype(np.float16)

    def test_rejects_malformed_input(self, small_setup):
        model = make_model(small_setup)
        with pytest.raises(ValueError):
            model.encode([np.zeros((3, 5))])
        with pytest.raises(ValueError):
            model.encode([np.array([[np.nan, 0.0], [1.0, 1.0]])])
        with pytest.raises(ValueError):
            model.encode([])


class TestChunkedL1:
    def test_matches_broadcast(self):
        rng = np.random.default_rng(0)
        queries = rng.standard_normal((7, 5))
        database = rng.standard_normal((23, 5))
        expected = np.abs(
            queries[:, None, :] - database[None, :, :]
        ).sum(axis=2)
        np.testing.assert_allclose(
            chunked_l1_distances(queries, database), expected, atol=1e-12
        )
        # Force many database chunks.
        np.testing.assert_allclose(
            chunked_l1_distances(queries, database, max_elements=8),
            expected, atol=1e-12,
        )

    def test_preserves_float32(self):
        rng = np.random.default_rng(1)
        queries = rng.standard_normal((3, 4)).astype(np.float32)
        database = rng.standard_normal((5, 4)).astype(np.float32)
        out = chunked_l1_distances(queries, database)
        assert out.dtype == np.float32
        assert out.shape == (3, 5)

    def test_empty_inputs(self):
        out = chunked_l1_distances(np.empty((0, 4)), np.empty((6, 4)))
        assert out.shape == (0, 6)
        out = chunked_l1_distances(np.empty((2, 4)), np.empty((0, 4)))
        assert out.shape == (2, 0)

    def test_distance_matrix_uses_chunking(self, small_setup,
                                           mixed_trajectories):
        model = make_model(small_setup)
        matrix = model.distance_matrix(mixed_trajectories[:3],
                                       mixed_trajectories[:6])
        emb_q = model.encode(mixed_trajectories[:3])
        emb_d = model.encode(mixed_trajectories[:6])
        expected = np.abs(emb_q[:, None, :] - emb_d[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(matrix, expected, atol=1e-12)
