"""Tests for the four TrajCL augmentation methods (paper §IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import TrajCLConfig
from repro.core.augmentation import (
    available_augmentations,
    get_augmentation,
    make_view,
    point_mask,
    point_shift,
    raw,
    simplify,
    truncate,
)

RNG_SEED = 5

trajectory_arrays = arrays(
    np.float64, st.tuples(st.integers(10, 60), st.just(2)),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)


def walk(n=30, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, 2)) * 40, axis=0)


class TestPointShift:
    def test_shape_preserved(self):
        t = walk()
        out = point_shift(t, np.random.default_rng(RNG_SEED))
        assert out.shape == t.shape

    def test_offsets_bounded_by_radius(self):
        t = walk()
        radius = 50.0
        out = point_shift(t, np.random.default_rng(RNG_SEED), radius=radius)
        offsets = np.abs(out - t)
        assert (offsets <= radius + 1e-9).all()

    def test_zero_radius_is_identity(self):
        t = walk()
        out = point_shift(t, np.random.default_rng(RNG_SEED), radius=0.0)
        np.testing.assert_allclose(out, t)

    def test_does_not_mutate_input(self):
        t = walk()
        original = t.copy()
        point_shift(t, np.random.default_rng(RNG_SEED))
        np.testing.assert_array_equal(t, original)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            point_shift(walk(), np.random.default_rng(0), radius=-1.0)

    def test_offsets_are_gaussian_like(self):
        """Most mass should be well inside the bound (σ=0.5 of the unit)."""
        t = np.zeros((5000, 2))
        out = point_shift(t, np.random.default_rng(RNG_SEED), radius=100.0, sigma=0.5)
        fraction_small = float((np.abs(out) < 50.0).mean())
        assert fraction_small > 0.6


class TestPointMask:
    def test_keeps_expected_count(self):
        t = walk(30)
        out = point_mask(t, np.random.default_rng(RNG_SEED), ratio=0.3)
        assert len(out) == int(np.floor(0.7 * 30))

    def test_kept_points_are_ordered_subset(self):
        t = walk(30)
        out = point_mask(t, np.random.default_rng(RNG_SEED), ratio=0.5)
        rows = {tuple(p) for p in out.tolist()}
        assert rows <= {tuple(p) for p in t.tolist()}
        # order preserved: each consecutive pair appears in order in t
        index_of = {tuple(p): i for i, p in enumerate(t.tolist())}
        indices = [index_of[tuple(p)] for p in out.tolist()]
        assert indices == sorted(indices)

    def test_min_keep_floor(self):
        t = walk(5)
        out = point_mask(t, np.random.default_rng(RNG_SEED), ratio=0.9)
        assert len(out) >= 2

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            point_mask(walk(), np.random.default_rng(0), ratio=1.0)


class TestTruncate:
    def test_keeps_contiguous_span(self):
        t = walk(30)
        out = truncate(t, np.random.default_rng(RNG_SEED), keep=0.7)
        assert len(out) == int(np.floor(0.7 * 30))
        # contiguity: out must appear as a slice of t
        for start in range(len(t) - len(out) + 1):
            if np.allclose(t[start:start + len(out)], out):
                break
        else:
            pytest.fail("truncated view is not a contiguous slice")

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            truncate(walk(), np.random.default_rng(0), keep=1.0)
        with pytest.raises(ValueError):
            truncate(walk(), np.random.default_rng(0), keep=0.0)

    def test_short_input_returned_whole(self):
        t = walk(3)
        out = truncate(t, np.random.default_rng(RNG_SEED), keep=0.9)
        assert len(out) >= 2


class TestSimplify:
    def test_removes_collinear_points(self):
        line = np.stack([np.arange(20, dtype=float) * 10, np.zeros(20)], axis=1)
        out = simplify(line, epsilon=1.0)
        assert len(out) == 2

    def test_endpoints_kept(self):
        t = walk(25)
        out = simplify(t, epsilon=30.0)
        np.testing.assert_allclose(out[0], t[0])
        np.testing.assert_allclose(out[-1], t[-1])

    def test_returns_at_least_two_points(self):
        t = walk(20)
        out = simplify(t, epsilon=1e12)
        assert len(out) >= 2


class TestRegistryAndMakeView:
    def test_available(self):
        assert set(available_augmentations()) == {
            "raw", "shift", "mask", "truncate", "simplify", "simplify_vw"
        }

    def test_get_augmentation(self):
        assert get_augmentation("mask") is point_mask
        with pytest.raises(KeyError):
            get_augmentation("bogus")

    def test_raw_returns_copy(self):
        t = walk()
        out = raw(t)
        np.testing.assert_array_equal(out, t)
        assert out is not t

    @pytest.mark.parametrize("name", ["raw", "shift", "mask", "truncate", "simplify"])
    def test_make_view_all_methods(self, name):
        t = walk(30)
        out = make_view(t, name, np.random.default_rng(RNG_SEED))
        assert out.ndim == 2 and out.shape[1] == 2
        assert len(out) >= 2

    def test_make_view_uses_config(self):
        config = TrajCLConfig(mask_ratio=0.5)
        t = walk(30)
        out = make_view(t, "mask", np.random.default_rng(RNG_SEED), config)
        assert len(out) == 15

    def test_make_view_unknown(self):
        with pytest.raises(KeyError):
            make_view(walk(), "bogus", np.random.default_rng(0))

    @settings(max_examples=20, deadline=None)
    @given(trajectory_arrays, st.sampled_from(["shift", "mask", "truncate", "simplify"]))
    def test_property_views_stay_valid(self, t, name):
        out = make_view(t, name, np.random.default_rng(RNG_SEED))
        assert np.isfinite(out).all()
        assert 2 <= len(out) <= len(t)

    def test_determinism_given_seed(self):
        t = walk(30)
        a = make_view(t, "mask", np.random.default_rng(7))
        b = make_view(t, "mask", np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
