"""Tests for full-pipeline checkpointing (repro.core.checkpoint)."""

import numpy as np
import pytest

from repro.core import TrajCL, load_pipeline, save_pipeline

from .conftest import make_trajectories


class TestPipelineCheckpoint:
    def test_roundtrip_preserves_embeddings(self, small_model, small_setup,
                                            tmp_path):
        _, _, trajectories = small_setup
        path = str(tmp_path / "pipeline.npz")
        save_pipeline(path, small_model)
        restored = load_pipeline(path)

        original = small_model.encode(trajectories[:6])
        loaded = restored.encode(trajectories[:6])
        np.testing.assert_allclose(original, loaded, atol=1e-12)

    def test_roundtrip_preserves_config(self, small_model, tmp_path):
        path = str(tmp_path / "pipeline.npz")
        save_pipeline(path, small_model)
        restored = load_pipeline(path)
        assert restored.config == small_model.config
        assert restored.encoder_variant == small_model.encoder_variant

    def test_roundtrip_preserves_grid(self, small_model, tmp_path):
        path = str(tmp_path / "pipeline.npz")
        save_pipeline(path, small_model)
        restored = load_pipeline(path)
        original_grid = small_model.features.grid
        loaded_grid = restored.features.grid
        assert loaded_grid.n_cells == original_grid.n_cells
        assert loaded_grid.cell_size == original_grid.cell_size

    def test_variant_roundtrip(self, small_setup, tmp_path):
        config, features, trajectories = small_setup
        model = TrajCL(features, config, encoder_variant="msm",
                       rng=np.random.default_rng(5))
        path = str(tmp_path / "msm.npz")
        save_pipeline(path, model)
        restored = load_pipeline(path)
        assert restored.encoder_variant == "msm"
        np.testing.assert_allclose(
            model.encode(trajectories[:3]), restored.encode(trajectories[:3]),
            atol=1e-12,
        )

    def test_rejects_non_pipeline_npz(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_pipeline(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_pipeline(str(tmp_path / "missing.npz"))
