"""Tests for the grid graph, biased walks, SGNS and node2vec pipeline."""

import numpy as np
import pytest

from repro.graph import (
    GridGraph,
    SkipGramModel,
    build_training_pairs,
    generate_walks,
    node2vec_embeddings,
)
from repro.trajectory import Grid


def make_grid(cols=6, rows=4):
    return Grid(0, 0, cols * 10, rows * 10, cell_size=10)


class TestGridGraph:
    def test_neighbor_table_matches_grid(self):
        grid = make_grid()
        graph = GridGraph(grid)
        for cell in range(grid.n_cells):
            padded = graph.neighbors_padded[cell]
            from_table = sorted(int(x) for x in padded[padded != GridGraph.PAD])
            assert from_table == sorted(grid.neighbors(cell))

    def test_degrees(self):
        graph = GridGraph(make_grid())
        assert graph.degrees[0] == 3          # corner
        assert graph.degrees.max() == 8       # interior
        # total degree = 2 * number of edges of an 8-neighbour 6x4 grid
        assert graph.degrees.sum() == graph.to_networkx().number_of_edges() * 2

    def test_are_adjacent_vectorized(self):
        grid = make_grid()
        graph = GridGraph(grid)
        a = np.array([0, 0, 0])
        b = np.array([1, grid.n_cols, grid.n_cols + 5])
        adj = graph.are_adjacent(a, b)
        assert adj[0] and adj[1] and not adj[2]

    def test_self_is_not_adjacent(self):
        graph = GridGraph(make_grid())
        assert not graph.are_adjacent(np.array([5]), np.array([5]))[0]

    def test_networkx_roundtrip(self):
        graph = GridGraph(make_grid(3, 3))
        g = graph.to_networkx()
        assert g.number_of_nodes() == 9
        assert g.number_of_edges() == 20  # 8-neighbour 3x3 grid: 12 + 8 diagonals


class TestWalks:
    def test_shape_and_validity(self):
        graph = GridGraph(make_grid())
        walks = generate_walks(graph, num_walks=2, walk_length=10,
                               rng=np.random.default_rng(0))
        assert walks.shape == (2 * graph.n_nodes, 10)
        assert walks.min() >= 0 and walks.max() < graph.n_nodes

    def test_consecutive_nodes_are_adjacent(self):
        graph = GridGraph(make_grid())
        walks = generate_walks(graph, num_walks=1, walk_length=12,
                               rng=np.random.default_rng(1))
        for row in walks[:50]:
            adj = graph.are_adjacent(row[:-1], row[1:])
            assert adj.all(), f"non-adjacent step in walk {row}"

    def test_start_nodes_respected(self):
        graph = GridGraph(make_grid())
        starts = np.array([3, 7])
        walks = generate_walks(graph, num_walks=3, walk_length=5,
                               start_nodes=starts, rng=np.random.default_rng(2))
        assert walks.shape == (6, 5)
        assert set(walks[:, 0]) == {3, 7}

    def test_return_bias_small_p_returns_more(self):
        """p << 1 boosts immediate backtracking (2nd-order bias sanity)."""
        graph = GridGraph(make_grid(10, 10))
        returny = generate_walks(graph, num_walks=5, walk_length=20, p=0.05, q=1.0,
                                 rng=np.random.default_rng(3))
        wandery = generate_walks(graph, num_walks=5, walk_length=20, p=20.0, q=1.0,
                                 rng=np.random.default_rng(3))

        def return_rate(walks):
            return float((walks[:, 2:] == walks[:, :-2]).mean())

        assert return_rate(returny) > return_rate(wandery) * 2

    def test_parameter_validation(self):
        graph = GridGraph(make_grid())
        with pytest.raises(ValueError):
            generate_walks(graph, walk_length=1)
        with pytest.raises(ValueError):
            generate_walks(graph, p=0.0)
        with pytest.raises(ValueError):
            generate_walks(graph, q=-1.0)


class TestSkipGram:
    def test_build_pairs_window(self):
        walks = np.array([[0, 1, 2, 3]])
        pairs = build_training_pairs(walks, window=1)
        as_set = {tuple(p) for p in pairs.tolist()}
        assert as_set == {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}

    def test_build_pairs_window_validation(self):
        with pytest.raises(ValueError):
            build_training_pairs(np.array([[0, 1]]), window=0)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        # Structured corpus: walks confined to one of two disjoint groups,
        # so co-occurrence is informative and the loss can actually drop.
        walks = np.concatenate([
            rng.integers(0, 5, size=(100, 8)),
            rng.integers(5, 10, size=(100, 8)),
        ])
        pairs = build_training_pairs(walks, window=2)
        model = SkipGramModel(10, 16, rng=rng)
        losses = model.train(pairs, epochs=4, lr=0.02, rng=rng)
        assert losses[-1] < losses[0]

    def test_cooccurring_nodes_become_similar(self):
        """Nodes that always appear together should embed nearby."""
        rng = np.random.default_rng(1)
        # Two disjoint cliques of a path: {0..4} and {5..9}.
        walks = np.concatenate([
            rng.integers(0, 5, size=(300, 10)),
            rng.integers(5, 10, size=(300, 10)),
        ])
        pairs = build_training_pairs(walks, window=3)
        model = SkipGramModel(10, 16, rng=rng)
        model.train(pairs, epochs=5, lr=0.05, rng=rng)
        emb = model.embeddings / np.linalg.norm(model.embeddings, axis=1, keepdims=True)
        sims = emb @ emb.T
        within = (sims[:5, :5].sum() - 5) / 20 + (sims[5:, 5:].sum() - 5) / 20
        across = sims[:5, 5:].mean()
        assert within / 2 > across

    def test_negative_count_validation(self):
        model = SkipGramModel(5, 4)
        with pytest.raises(ValueError):
            model.train(np.array([[0, 1]]), negatives=0)


class TestNode2Vec:
    def test_embedding_shape(self):
        emb = node2vec_embeddings(make_grid(4, 3), dim=8, num_walks=2,
                                  walk_length=8, epochs=1, seed=0)
        assert emb.shape == (12, 8)
        assert np.isfinite(emb).all()

    def test_adjacent_cells_embed_closer_than_distant(self):
        grid = Grid(0, 0, 120, 120, cell_size=10)  # 12x12
        emb = node2vec_embeddings(grid, dim=32, num_walks=4, walk_length=16,
                                  epochs=3, seed=1)
        emb = emb / np.linalg.norm(emb, axis=1, keepdims=True)

        rng = np.random.default_rng(2)
        graph = GridGraph(grid)
        adjacent_sims, distant_sims = [], []
        for _ in range(200):
            a = rng.integers(0, grid.n_cells)
            nbrs = graph.neighbors_padded[a]
            nbrs = nbrs[nbrs != GridGraph.PAD]
            adjacent_sims.append(float(emb[a] @ emb[rng.choice(nbrs)]))
            b = rng.integers(0, grid.n_cells)
            ra, ca = divmod(int(a), grid.n_cols)
            rb, cb = divmod(int(b), grid.n_cols)
            if max(abs(ra - rb), abs(ca - cb)) >= 6:
                distant_sims.append(float(emb[a] @ emb[b]))
        assert np.mean(adjacent_sims) > np.mean(distant_sims) + 0.1

    def test_deterministic_given_seed(self):
        grid = make_grid(4, 4)
        a = node2vec_embeddings(grid, dim=8, num_walks=2, walk_length=6,
                                epochs=1, seed=42)
        b = node2vec_embeddings(grid, dim=8, num_walks=2, walk_length=6,
                                epochs=1, seed=42)
        np.testing.assert_allclose(a, b)
