"""Repo-wide test hooks.

Setting ``REPRO_LOCK_SANITIZER=1`` (the ``make test-all`` slow lane and
CI do) patches ``threading.Lock``/``RLock`` with the order-checking
wrappers from :mod:`repro.analysis.sanitizer` *before* any test imports
the serving stack, so every lock the stack creates is instrumented and
an ABBA inversion anywhere in the suite raises ``LockOrderError``
instead of deadlocking.
"""

import os

if os.environ.get("REPRO_LOCK_SANITIZER"):
    from repro.analysis import install_from_env

    install_from_env()
