"""Tests for ranking / hit-ratio metrics, timing, and the experiment pipeline."""

import numpy as np
import pytest

from repro.eval import (
    Stopwatch,
    approximation_metrics,
    distance_matrix_of,
    evaluate_mean_rank,
    format_table,
    hit_ratio,
    make_instance,
    mean_rank,
    ranks_of_truth,
    recall_n_at_m,
    time_callable,
)
from repro.datasets import generate_city, get_preset
from repro.measures import Hausdorff


class TestRanks:
    def test_perfect_measure_ranks_one(self):
        matrix = np.array([[0.0, 5.0, 9.0], [7.0, 0.0, 3.0]])
        np.testing.assert_array_equal(ranks_of_truth(matrix, [0, 1]), [1, 1])

    def test_rank_counts_better_entries(self):
        matrix = np.array([[3.0, 1.0, 2.0, 5.0]])
        assert ranks_of_truth(matrix, [0])[0] == 3

    def test_ties_are_pessimistic(self):
        matrix = np.array([[2.0, 2.0, 2.0]])
        assert ranks_of_truth(matrix, [1])[0] == 3

    def test_mean_rank(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert mean_rank(matrix, [0, 0]) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ranks_of_truth(np.zeros(3), [0])
        with pytest.raises(ValueError):
            ranks_of_truth(np.zeros((2, 3)), [0])


class TestHitRatio:
    def test_identical_matrices_hit_everything(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((4, 30))
        assert hit_ratio(matrix, matrix, k=5) == 1.0
        assert recall_n_at_m(matrix, matrix, 5, 20) == 1.0

    def test_reversed_ranking_misses(self):
        matrix = np.arange(30, dtype=float)[None, :]
        assert hit_ratio(-matrix, matrix, k=5) == 0.0

    def test_partial_overlap(self):
        truth = np.array([[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]])
        predicted = np.array([[0.0, 1.0, 5.0, 4.0, 3.0, 2.0]])
        # true top-2 {0,1}; predicted top-2 {0,1} -> HR@2 = 1
        assert hit_ratio(predicted, truth, k=2) == 1.0
        # true top-3 {0,1,2}; predicted top-3 {0,1,5} -> 2/3
        assert hit_ratio(predicted, truth, k=3) == pytest.approx(2 / 3)

    def test_r5_at_20_requires_n_le_m(self):
        with pytest.raises(ValueError):
            recall_n_at_m(np.zeros((1, 30)), np.zeros((1, 30)), n=21, m=20)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hit_ratio(np.zeros((2, 5)), np.zeros((3, 5)), k=2)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure("a"):
            pass
        with watch.measure("a"):
            pass
        assert len(watch.records["a"]) == 2
        assert watch.total("a") >= 0
        assert watch.mean("a") >= 0

    def test_time_callable(self):
        assert time_callable(lambda: sum(range(100))) >= 0
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(["name", "value"], [["porto", 1.2345], ["xian", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "porto" in lines[2]
        assert "1.234" in lines[2] or "1.235" in lines[2]


class TestExperimentHelpers:
    @pytest.fixture(scope="class")
    def pool(self):
        return generate_city(get_preset("porto"), 60, seed=0)

    def test_make_instance_and_mean_rank_with_heuristic(self, pool):
        instance = make_instance(pool, n_queries=5, database_size=30, seed=1)
        rank = evaluate_mean_rank(Hausdorff(), instance)
        assert 1.0 <= rank <= 30.0

    def test_hausdorff_finds_odd_even_pairs(self, pool):
        """The odd/even halves of one trajectory are extremely similar, so
        even a heuristic should rank the truth near the top."""
        instance = make_instance(pool, n_queries=8, database_size=40, seed=2)
        rank = evaluate_mean_rank(Hausdorff(), instance)
        assert rank < 5.0

    def test_distance_matrix_of_rejects_unknown(self):
        with pytest.raises(TypeError):
            distance_matrix_of(object(), [], [])

    def test_approximation_metrics_keys(self, pool):
        measure = Hausdorff()
        metrics = approximation_metrics(measure, measure, pool[:4], pool[:30])
        assert set(metrics) == {"hr5", "hr20", "r5at20"}
        assert metrics["hr5"] == 1.0  # measure approximates itself perfectly
