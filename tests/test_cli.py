"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import _load_trajectories, build_parser, main, save_trajectories


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "city.npz")
    assert main(["generate", "--city", "porto", "--count", "40",
                 "--seed", "1", "--output", path]) == 0
    return path


@pytest.fixture(scope="module")
def checkpoint_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "model.npz")
    assert main(["train", "--city", "porto", "--count", "60", "--epochs", "1",
                 "--seed", "0", "--output", path]) == 0
    return path


class TestTrajectoriesIO:
    def test_roundtrip(self, tmp_path):
        trajs = [np.random.default_rng(i).standard_normal((5 + i, 2))
                 for i in range(3)]
        path = str(tmp_path / "t.npz")
        save_trajectories(path, trajs)
        loaded = _load_trajectories(path)
        assert len(loaded) == 3
        for original, restored in zip(trajs, loaded):
            np.testing.assert_allclose(original, restored)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_city(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--city", "london",
                                       "--output", "x.npz"])


class TestGenerate:
    def test_creates_dataset(self, dataset_path):
        trajectories = _load_trajectories(dataset_path)
        assert len(trajectories) == 40
        assert all(t.shape[1] == 2 for t in trajectories)

    def test_output_message(self, dataset_path, capsys, tmp_path):
        main(["generate", "--city", "xian", "--count", "5",
              "--output", str(tmp_path / "x.npz")])
        out = capsys.readouterr().out
        assert "5 xian trajectories" in out


class TestTrainEncodeEvaluateKnn:
    def test_train_writes_checkpoint(self, checkpoint_path):
        from repro.core import load_pipeline

        model = load_pipeline(checkpoint_path)
        assert model.encoder.output_dim > 0

    def test_encode(self, checkpoint_path, dataset_path, tmp_path, capsys):
        out_path = str(tmp_path / "emb.npy")
        assert main(["encode", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--output", out_path]) == 0
        embeddings = np.load(out_path)
        assert embeddings.shape[0] == 40

    def test_evaluate(self, checkpoint_path, dataset_path, capsys):
        assert main(["evaluate", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--queries", "5",
                     "--database", "30"]) == 0
        out = capsys.readouterr().out
        assert "TrajCL" in out and "mean rank" in out

    def test_evaluate_with_heuristics(self, checkpoint_path, dataset_path, capsys):
        assert main(["evaluate", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--queries", "4",
                     "--database", "20", "--heuristics"]) == 0
        out = capsys.readouterr().out
        for name in ["hausdorff", "frechet", "edr", "edwp"]:
            assert name in out

    def test_knn(self, checkpoint_path, dataset_path, capsys):
        assert main(["knn", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--query", "2", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "3NN of trajectory 2" in out
        assert "#3:" in out
