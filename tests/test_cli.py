"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import _load_trajectories, build_parser, main, save_trajectories


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "city.npz")
    assert main(["generate", "--city", "porto", "--count", "40",
                 "--seed", "1", "--output", path]) == 0
    return path


@pytest.fixture(scope="module")
def checkpoint_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "model.npz")
    assert main(["train", "--city", "porto", "--count", "60", "--epochs", "1",
                 "--seed", "0", "--output", path]) == 0
    return path


class TestTrajectoriesIO:
    def test_roundtrip(self, tmp_path):
        trajs = [np.random.default_rng(i).standard_normal((5 + i, 2))
                 for i in range(3)]
        path = str(tmp_path / "t.npz")
        save_trajectories(path, trajs)
        loaded = _load_trajectories(path)
        assert len(loaded) == 3
        for original, restored in zip(trajs, loaded):
            np.testing.assert_allclose(original, restored)

    def test_writes_format_version(self, tmp_path):
        from repro.cli import TRAJECTORY_FORMAT_VERSION

        path = str(tmp_path / "t.npz")
        save_trajectories(path, [np.zeros((4, 2))])
        with np.load(path) as archive:
            assert int(archive["format_version"]) == TRAJECTORY_FORMAT_VERSION

    def test_accepts_legacy_unversioned_files(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path, count=np.array(1), traj_0=np.ones((3, 2)))
        loaded = _load_trajectories(path)
        np.testing.assert_allclose(loaded[0], np.ones((3, 2)))

    def test_unknown_version_is_a_clear_error(self, tmp_path):
        path = str(tmp_path / "future.npz")
        np.savez(path, format_version=np.array(999), count=np.array(0))
        with pytest.raises(ValueError, match="format version 999"):
            _load_trajectories(path)

    def test_non_dataset_file_is_a_clear_error(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError, match="not a trajectory dataset"):
            _load_trajectories(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_city(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--city", "london",
                                       "--output", "x.npz"])


class TestGenerate:
    def test_creates_dataset(self, dataset_path):
        trajectories = _load_trajectories(dataset_path)
        assert len(trajectories) == 40
        assert all(t.shape[1] == 2 for t in trajectories)

    def test_output_message(self, dataset_path, capsys, tmp_path):
        main(["generate", "--city", "xian", "--count", "5",
              "--output", str(tmp_path / "x.npz")])
        out = capsys.readouterr().out
        assert "5 xian trajectories" in out


class TestTrainEncodeEvaluateKnn:
    def test_train_writes_checkpoint(self, checkpoint_path):
        from repro.core import load_pipeline

        model = load_pipeline(checkpoint_path)
        assert model.encoder.output_dim > 0

    def test_encode(self, checkpoint_path, dataset_path, tmp_path, capsys):
        out_path = str(tmp_path / "emb.npy")
        assert main(["encode", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--output", out_path]) == 0
        embeddings = np.load(out_path)
        assert embeddings.shape[0] == 40

    def test_evaluate(self, checkpoint_path, dataset_path, capsys):
        assert main(["evaluate", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--queries", "5",
                     "--database", "30"]) == 0
        out = capsys.readouterr().out
        assert "TrajCL" in out and "mean rank" in out

    def test_evaluate_with_heuristics(self, checkpoint_path, dataset_path, capsys):
        assert main(["evaluate", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--queries", "4",
                     "--database", "20", "--heuristics"]) == 0
        out = capsys.readouterr().out
        for name in ["hausdorff", "frechet", "edr", "edwp"]:
            assert name in out

    def test_knn(self, checkpoint_path, dataset_path, capsys):
        assert main(["knn", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--query", "2", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "3NN of trajectory 2" in out
        assert "index bruteforce" in out  # the embedding-backend default
        assert "#3:" in out

    def test_encode_dtype_flag(self, checkpoint_path, dataset_path, tmp_path):
        out32 = str(tmp_path / "emb32.npy")
        assert main(["encode", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--encode-dtype", "float32",
                     "--output", out32]) == 0
        assert np.load(out32).dtype == np.float32

    def test_knn_fast_flags_agree_with_reference(self, checkpoint_path,
                                                 dataset_path, capsys):
        """The fused engine (both dtypes) and the reference Tensor path
        must return the same neighbours from the CLI."""
        argv = ["knn", "--checkpoint", checkpoint_path,
                "--data", dataset_path, "--query", "2", "--k", "3"]
        outputs = []
        for extra in ([], ["--no-fast-encode"],
                      ["--encode-dtype", "float32"]):
            assert main(argv + extra) == 0
            out = capsys.readouterr().out
            outputs.append([line.split("(")[0] for line
                            in out.splitlines()[1:]])  # ids, not distances
        assert outputs[0] == outputs[1] == outputs[2]


class TestBackendsCommand:
    def test_lists_all_backends(self, capsys):
        from repro.api import available_backends

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out

    def test_evaluate_with_heuristic_backend(self, dataset_path, capsys):
        assert main(["evaluate", "--data", dataset_path,
                     "--backend", "hausdorff",
                     "--queries", "4", "--database", "20"]) == 0
        out = capsys.readouterr().out
        assert "hausdorff" in out and "mean rank" in out

    def test_evaluate_trajcl_requires_checkpoint(self, dataset_path):
        with pytest.raises(SystemExit, match="needs --checkpoint"):
            main(["evaluate", "--data", dataset_path, "--backend", "trajcl"])

    def test_knn_with_heuristic_backend(self, dataset_path, capsys):
        assert main(["knn", "--data", dataset_path, "--backend", "hausdorff",
                     "--query", "1", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "backend hausdorff" in out
        assert "#2:" in out

    def test_knn_never_returns_self_or_short_results(self, checkpoint_path,
                                                     dataset_path, capsys):
        import re

        assert main(["knn", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--query", "0", "--k", "4"]) == 0
        out = capsys.readouterr().out
        # the query itself never appears among the results...
        assert re.search(r"#\d+: trajectory 0 \(", out) is None
        assert "#4:" in out  # ...and the result is still k long

    def test_knn_matches_similarity_service(self, checkpoint_path,
                                            dataset_path, capsys):
        """Acceptance: the CLI and the service return identical neighbours."""
        import re

        from repro.api import SimilarityService
        from repro.cli import _load_trajectories as load

        assert main(["knn", "--checkpoint", checkpoint_path,
                     "--data", dataset_path, "--query", "2", "--k", "3"]) == 0
        out = capsys.readouterr().out
        cli_ids = [int(m) for m in re.findall(r"#\d+: trajectory (\d+) \(", out)]

        database = load(dataset_path)
        service = SimilarityService(
            backend="trajcl", backend_kwargs={"checkpoint": checkpoint_path}
        )
        service.add(database)
        _, ids = service.knn(database[2], k=3, exclude=2)
        assert cli_ids == ids[0].tolist()


class TestServingCli:
    def test_knn_workers_matches_single_process(self, dataset_path, capsys):
        argv = ["knn", "--data", dataset_path, "--backend", "hausdorff",
                "--query", "1", "--k", "3"]
        assert main(argv) == 0
        single_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        sharded_out = capsys.readouterr().out
        # Same neighbours and distances, shard-count aside.
        assert single_out.splitlines()[1:] == sharded_out.splitlines()[1:]
        assert "workers 2" in sharded_out
        # Both paths resolve and report the backend's real default index.
        assert "index segment" in single_out
        assert "index segment" in sharded_out

    def test_knn_batch_wait_routes_through_queue(self, dataset_path, capsys):
        argv = ["knn", "--data", dataset_path, "--backend", "hausdorff",
                "--query", "1", "--k", "3"]
        assert main(argv) == 0
        direct_out = capsys.readouterr().out
        assert main(argv + ["--batch-wait", "0.01"]) == 0
        queued_out = capsys.readouterr().out
        assert direct_out.splitlines()[1:] == queued_out.splitlines()[1:]

    def test_serve_bench_writes_json(self, dataset_path, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "BENCH_serving.json")
        assert main(["serve-bench", "--data", dataset_path,
                     "--backend", "hausdorff", "--queries", "4", "--k", "2",
                     "--workers", "1,2", "--repeats", "1",
                     "--output", out_path]) == 0
        printed = capsys.readouterr().out
        assert "unbatched q/s" in printed
        assert "remote:" in printed and "async:" in printed
        assert "cluster:" in printed and "http:" in printed
        payload = json.loads(open(out_path).read())
        scenarios = payload["scenarios"]
        assert set(scenarios) == {"in_process", "remote", "async", "cluster",
                                  "http"}
        assert scenarios["in_process"]["config"]["backend"] == "hausdorff"
        rows = scenarios["in_process"]["results"]
        assert [r["workers"] for r in rows] == [1, 2]
        for row in rows:
            assert row["unbatched_qps"] > 0
            assert row["batched_qps"] > 0
        assert scenarios["remote"]["results"]["qps"] > 0
        assert scenarios["remote"]["results"]["batched_qps"] > 0
        assert scenarios["async"]["results"]["qps"] > 0
        assert scenarios["cluster"]["results"]["qps"] > 0
        assert scenarios["cluster"]["results"]["workers"] == 2
        assert scenarios["http"]["results"]["qps"] > 0
        assert scenarios["http"]["results"]["concurrent_qps"] > 0
        # Every scenario reports latency percentiles beside its q/s.
        for name, results in scenarios.items():
            rows = results["results"]
            for row in rows if isinstance(rows, list) else [rows]:
                summary = row["latency_ms"]
                assert summary["p50"] > 0
                assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_serve_bench_merges_by_scenario(self, dataset_path, tmp_path,
                                            capsys):
        import json

        out_path = tmp_path / "BENCH_serving.json"
        # A pre-scenario record (the PR 2 flat layout) must be migrated,
        # not clobbered, when only other scenarios are re-run.
        legacy = {"backend": "hausdorff", "database_size": 12,
                  "results": [{"workers": 1, "unbatched_qps": 123.0,
                               "batched_qps": 45.0, "batches": 1,
                               "largest_batch": 4}]}
        out_path.write_text(json.dumps(legacy))
        assert main(["serve-bench", "--data", dataset_path,
                     "--backend", "hausdorff", "--queries", "4", "--k", "2",
                     "--repeats", "1", "--scenarios", "remote",
                     "--output", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["scenarios"]["in_process"]["results"] == legacy["results"]
        assert payload["scenarios"]["remote"]["results"]["qps"] > 0
        assert "async" not in payload["scenarios"]

    def test_serve_bench_large_db_scenario(self, dataset_path, tmp_path,
                                           capsys):
        import json

        out_path = tmp_path / "BENCH_serving.json"
        assert main(["serve-bench", "--data", dataset_path,
                     "--backend", "hausdorff", "--queries", "4", "--k", "2",
                     "--repeats", "1", "--scenarios", "large_db",
                     "--db-size", "60", "--wire-format", "binary",
                     "--output", str(out_path)]) == 0
        printed = capsys.readouterr().out
        # The effective config is printed so recorded numbers can never
        # drift silently from the parameters that produced them.
        assert "config:" in printed
        assert "wire_format=binary" in printed
        assert "db_size=60" in printed
        payload = json.loads(out_path.read_text())
        record = payload["scenarios"]["large_db"]
        assert record["db_size"] == 60
        assert "embedding_dim" in record  # None for distance backends
        assert record["config"]["wire_format"] == "binary"
        rows = record["results"]
        assert [r["workers"] for r in rows] == [1, 2]
        for row in rows:
            assert row["unbatched_qps"] > 0
            assert row["latency_ms"]["p50"] > 0
        # The sharded row carries the merged transport counters.
        assert rows[1]["transport"]["frames_sent"] > 0
        assert rows[1]["transport"]["wire_format"] == "binary"

    def test_serve_and_remote_knn(self, dataset_path, tmp_path, capsys):
        import threading
        import time

        ready = tmp_path / "ready"
        # knn --remote issues two requests (knn + stats); the server then
        # trips max_requests and serve returns on its own.
        server_argv = ["serve", "--data", dataset_path,
                       "--backend", "hausdorff", "--port", "0",
                       "--ready-file", str(ready), "--max-requests", "2"]
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.setdefault("serve", main(server_argv)))
        thread.start()
        try:
            for _ in range(200):
                if ready.exists():
                    break
                time.sleep(0.05)
            address = ready.read_text().strip()
            assert main(["knn", "--data", dataset_path, "--query", "1",
                         "--k", "3", "--remote", address]) == 0
            out = capsys.readouterr().out
            assert "3NN of trajectory 1" in out
            assert "backend hausdorff" in out
            assert f"remote {address}" in out
            # Remote answer matches the plain local CLI path.
            assert main(["knn", "--data", dataset_path,
                         "--backend", "hausdorff", "--query", "1",
                         "--k", "3"]) == 0
            local_out = capsys.readouterr().out
            # The serve thread's startup line shares captured stdout, so
            # compare just the neighbour rows (everything after the header).
            assert out.splitlines()[-3:] == local_out.splitlines()[-3:]
            assert any("#1:" in line for line in out.splitlines())
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert rc.get("serve") == 0


class TestClusterCli:
    def test_cluster_front_end_and_remote_knn(self, dataset_path, tmp_path,
                                              capsys):
        import threading
        import time

        from repro.api import ShardWorker

        workers = [ShardWorker(), ShardWorker()]
        ready = tmp_path / "cluster-ready"
        # knn --remote issues two requests (knn + stats); the front-end
        # trips max_requests and `cluster` returns on its own.
        front_argv = ["cluster", "--data", dataset_path,
                      "--backend", "hausdorff",
                      "--workers", ",".join(f"{h}:{p}" for h, p in
                                            (w.address for w in workers)),
                      "--port", "0", "--ready-file", str(ready),
                      "--heartbeat-interval", "0", "--max-requests", "2"]
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.setdefault("cluster", main(front_argv)))
        thread.start()
        try:
            for _ in range(200):
                if ready.exists():
                    break
                time.sleep(0.05)
            address = ready.read_text().strip()
            assert main(["knn", "--data", dataset_path, "--query", "1",
                         "--k", "3", "--remote", address]) == 0
            out = capsys.readouterr().out
            assert "3NN of trajectory 1" in out
            assert "backend hausdorff" in out
            # The cluster's answer matches the plain local CLI path
            # bit-for-bit (the printed rows include the distances).
            assert main(["knn", "--data", dataset_path,
                         "--backend", "hausdorff", "--query", "1",
                         "--k", "3"]) == 0
            local_out = capsys.readouterr().out
            assert out.splitlines()[-3:] == local_out.splitlines()[-3:]
            assert any("#1:" in line for line in out.splitlines())
        finally:
            thread.join(timeout=60)
            for worker in workers:
                worker.close()
        assert not thread.is_alive()
        assert rc.get("cluster") == 0

    def test_cluster_worker_serves_until_shutdown(self, tmp_path):
        import threading
        import time

        from repro.api.transport import SocketTransport, request

        ready = tmp_path / "worker-ready"
        rc = {}
        thread = threading.Thread(target=lambda: rc.setdefault(
            "worker", main(["cluster-worker", "--port", "0",
                            "--ready-file", str(ready)])))
        thread.start()
        try:
            for _ in range(200):
                if ready.exists():
                    break
                time.sleep(0.05)
            host, port = ready.read_text().strip().rsplit(":", 1)
            transport = SocketTransport.connect(host, int(port),
                                                retries=10)
            try:
                assert request(transport, "ping")["joined"] is False
                request(transport, "shutdown")
            finally:
                transport.close()
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert rc.get("worker") == 0


class TestServeHttpCli:
    def test_serve_http_answers_json_knn(self, dataset_path, tmp_path,
                                         capsys):
        import json
        import threading
        import time
        import urllib.request

        from repro.api import SimilarityService

        ready = tmp_path / "http-ready"
        # Two HTTP requests (knn + healthz) trip max_requests, so the
        # gateway shuts itself down and the serve thread returns.
        argv = ["serve-http", "--data", dataset_path,
                "--backend", "hausdorff", "--port", "0",
                "--ready-file", str(ready), "--max-requests", "2"]
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.setdefault("serve", main(argv)))
        thread.start()
        try:
            for _ in range(200):
                if ready.exists():
                    break
                time.sleep(0.05)
            address = ready.read_text().strip()
            trajectories = _load_trajectories(dataset_path)
            body = json.dumps({
                "queries": [np.asarray(trajectories[1]).tolist()],
                "k": 3, "exclude": 1,
            }).encode()
            request = urllib.request.Request(
                f"http://{address}/knn", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                reply = json.loads(response.read())
            with urllib.request.urlopen(f"http://{address}/healthz",
                                        timeout=30) as response:
                assert json.loads(response.read())["status"] == "ok"
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert rc.get("serve") == 0
        assert "http gateway: backend hausdorff" in capsys.readouterr().out
        expected = SimilarityService(backend="hausdorff").add(trajectories)
        expected_d, expected_i = expected.knn(trajectories[1], k=3, exclude=1)
        np.testing.assert_array_equal(np.asarray(reply["ids"]), expected_i)
        np.testing.assert_allclose(np.asarray(reply["distances"]), expected_d)
