"""Tests for Module/Parameter containers and the core layers."""

import numpy as np
import pytest

import repro.nn as nn

RNG = np.random.default_rng(23)


def randn(*shape):
    return RNG.standard_normal(shape)


class TinyNet(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=rng)
        self.fc2 = nn.Linear(8, 2, rng=rng)
        self.norm = nn.LayerNorm(8)

    def forward(self, x):
        return self.fc2(self.norm(self.fc1(x)).relu())


class TestModule:
    def test_named_parameters_paths(self):
        net = TinyNet(np.random.default_rng(0))
        names = dict(net.named_parameters())
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "norm.gamma" in names
        assert len(names) == 6

    def test_num_parameters(self):
        net = TinyNet(np.random.default_rng(0))
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 8 + 8

    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(3, 3), nn.Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_all(self):
        net = TinyNet(np.random.default_rng(0))
        out = net(nn.tensor(randn(2, 4)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net_a = TinyNet(np.random.default_rng(1))
        net_b = TinyNet(np.random.default_rng(2))
        x = randn(3, 4)
        assert not np.allclose(net_a(nn.tensor(x)).data, net_b(nn.tensor(x)).data)
        net_b.load_state_dict(net_a.state_dict())
        np.testing.assert_allclose(net_a(nn.tensor(x)).data, net_b(nn.tensor(x)).data)

    def test_load_state_dict_strict_mismatch(self):
        net = TinyNet(np.random.default_rng(0))
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = TinyNet(np.random.default_rng(0))
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_module_list(self):
        layers = nn.ModuleList(nn.Linear(2, 2) for _ in range(3))
        assert len(layers) == 3
        assert len(list(layers.named_parameters())) == 6


class TestLinear:
    def test_output_shape_and_bias(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(nn.tensor(randn(7, 5)))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_3d_input(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        assert layer(nn.tensor(randn(2, 4, 5))).shape == (2, 4, 3)

    def test_gradients_flow_to_weights(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        layer(nn.tensor(randn(3, 4))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 6, rng=np.random.default_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_pretrained_weight(self):
        table = randn(10, 6)
        emb = nn.Embedding(10, 6, weight=table)
        np.testing.assert_allclose(emb(np.array([3])).data[0], table[3])

    def test_pretrained_shape_check(self):
        with pytest.raises(ValueError):
            nn.Embedding(10, 6, weight=randn(9, 6))

    def test_frozen_embedding_gets_no_grad(self):
        emb = nn.Embedding(10, 6, weight=randn(10, 6), trainable=False)
        out = emb(np.array([1, 2])) * nn.tensor(randn(2, 6), requires_grad=True)
        out.sum().backward()
        assert emb.weight.grad is None

    def test_out_of_range_ids(self):
        emb = nn.Embedding(10, 6, rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_duplicate_ids_accumulate_gradient(self):
        emb = nn.Embedding(5, 3, rng=np.random.default_rng(0))
        emb(np.array([2, 2, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 3 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))


class TestLayerNormLayer:
    def test_parameterized_output(self):
        layer = nn.LayerNorm(4)
        layer.gamma.data[...] = 2.0
        layer.beta.data[...] = 1.0
        out = layer(nn.tensor(randn(3, 4)))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.ones(3), atol=1e-8)


class TestDropoutLayer:
    def test_respects_training_flag(self):
        layer = nn.Dropout(0.9, rng=np.random.default_rng(0))
        x = nn.tensor(np.ones((10, 10)))
        layer.eval()
        np.testing.assert_allclose(layer(x).data, x.data)
        layer.train()
        assert (layer(x).data == 0).any()

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestFeedForwardAndProjection:
    def test_ffn_shape_preserved(self):
        ffn = nn.FeedForward(8, hidden_dim=16, rng=np.random.default_rng(0))
        ffn.eval()
        assert ffn(nn.tensor(randn(2, 5, 8))).shape == (2, 5, 8)

    def test_projection_head_maps_dim(self):
        head = nn.ProjectionHead(16, 4, rng=np.random.default_rng(0))
        assert head(nn.tensor(randn(3, 16))).shape == (3, 4)

    def test_projection_head_structure_fc_relu_fc(self):
        # Eq. 1 of the paper: two linear layers, ReLU between, no output ReLU.
        head = nn.ProjectionHead(4, 2, rng=np.random.default_rng(0))
        out = head(nn.tensor(randn(50, 4)))
        assert (out.data < 0).any(), "output must not be ReLU-clamped"
