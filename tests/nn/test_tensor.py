"""Unit + property tests for the autodiff engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, concatenate, maximum, no_grad, stack, tensor, where, zeros

from ..gradcheck import assert_gradients_close


RNG = np.random.default_rng(7)


def randn(*shape):
    return RNG.standard_normal(shape)


class TestForwardValues:
    def test_add_broadcast(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        b = tensor([10.0, 20.0])
        np.testing.assert_allclose((a + b).data, [[11, 22], [13, 24]])

    def test_scalar_ops(self):
        x = tensor([2.0])
        assert (x * 3).item() == 6.0
        assert (3 * x).item() == 6.0
        assert (x - 1).item() == 1.0
        assert (1 - x).item() == -1.0
        assert (x / 2).item() == 1.0
        assert (8 / x).item() == 4.0
        assert (-x).item() == -2.0
        assert (x ** 2).item() == 4.0

    def test_matmul_matches_numpy(self):
        a, b = randn(3, 4), randn(4, 5)
        np.testing.assert_allclose((tensor(a) @ tensor(b)).data, a @ b)

    def test_batched_matmul_matches_numpy(self):
        a, b = randn(2, 3, 4, 5), randn(2, 3, 5, 6)
        np.testing.assert_allclose((tensor(a) @ tensor(b)).data, a @ b)

    def test_reductions_match_numpy(self):
        x = randn(3, 4, 5)
        t = tensor(x)
        np.testing.assert_allclose(t.sum(axis=1).data, x.sum(axis=1))
        np.testing.assert_allclose(t.mean(axis=(0, 2)).data, x.mean(axis=(0, 2)))
        np.testing.assert_allclose(t.max(axis=-1).data, x.max(axis=-1))
        np.testing.assert_allclose(t.min(axis=0).data, x.min(axis=0))

    def test_shape_ops(self):
        x = randn(2, 3, 4)
        t = tensor(x)
        assert t.reshape(6, 4).shape == (6, 4)
        assert t.transpose(2, 0, 1).shape == (4, 2, 3)
        assert t.swapaxes(0, 2).shape == (4, 3, 2)
        assert t[0].shape == (3, 4)
        assert t.expand_dims(1).shape == (2, 1, 3, 4)
        assert t.expand_dims(1).squeeze(1).shape == (2, 3, 4)

    def test_where_and_maximum(self):
        a, b = tensor([1.0, 5.0]), tensor([4.0, 2.0])
        np.testing.assert_allclose(where(a.data > b.data, a, b).data, [4, 5])
        np.testing.assert_allclose(maximum(a, b).data, [4, 5])

    def test_concat_and_stack(self):
        a, b = tensor(randn(2, 3)), tensor(randn(2, 3))
        assert concatenate([a, b], axis=0).shape == (4, 3)
        assert concatenate([a, b], axis=1).shape == (2, 6)
        assert stack([a, b], axis=0).shape == (2, 2, 3)

    def test_int_input_promoted_to_float(self):
        assert tensor([1, 2, 3]).dtype == np.float64

    def test_comparison_returns_plain_arrays(self):
        result = tensor([1.0, 3.0]) > tensor([2.0, 2.0])
        assert isinstance(result, np.ndarray)
        np.testing.assert_array_equal(result, [False, True])


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_grad_accumulates_across_uses(self):
        x = tensor([3.0], requires_grad=True)
        y = x * 2 + x * 5  # dy/dx = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_blocks_graph(self):
        x = tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_detach_severs_graph(self):
        x = tensor([1.0], requires_grad=True)
        y = (x * 2).detach() * 3
        assert not y.requires_grad

    def test_zero_grad(self):
        x = tensor([1.0], requires_grad=True)
        (x * 2).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_does_not_recurse(self):
        # Iterative topo-sort must handle graphs deeper than the recursion limit.
        x = tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_broadcast_gradient_shapes(self):
        a = tensor(randn(3, 4), requires_grad=True)
        b = tensor(randn(4), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)


class TestGradientsNumeric:
    """Analytic-vs-finite-difference checks for every primitive."""

    def test_add_sub_mul_div(self):
        a, b = randn(3, 4), randn(3, 4) + 2.0
        assert_gradients_close(lambda ts: ((ts[0] + ts[1]) * ts[0] / ts[1]).sum(), [a, b])

    def test_broadcast_add_mul(self):
        a, b = randn(3, 4), randn(4)
        assert_gradients_close(lambda ts: ((ts[0] + ts[1]) * ts[1]).sum(), [a, b])

    def test_matmul_2d(self):
        a, b = randn(3, 4), randn(4, 5)
        assert_gradients_close(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_batched(self):
        a, b = randn(2, 3, 4), randn(2, 4, 5)
        assert_gradients_close(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_broadcast_batch(self):
        a, b = randn(2, 3, 4), randn(4, 5)
        assert_gradients_close(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_vector_cases(self):
        a, b = randn(4), randn(4)
        assert_gradients_close(lambda ts: ts[0] @ ts[1], [a, b])
        m, v = randn(3, 4), randn(4)
        assert_gradients_close(lambda ts: (ts[0] @ ts[1]).sum(), [m, v])
        v2, m2 = randn(3), randn(3, 4)
        assert_gradients_close(lambda ts: (ts[0] @ ts[1]).sum(), [v2, m2])

    def test_elementwise_unary(self):
        x = randn(3, 4) * 0.5
        assert_gradients_close(lambda ts: ts[0].exp().sum(), [x])
        assert_gradients_close(lambda ts: ts[0].tanh().sum(), [x])
        assert_gradients_close(lambda ts: ts[0].sigmoid().sum(), [x])
        positive = np.abs(randn(3, 4)) + 0.5
        assert_gradients_close(lambda ts: ts[0].log().sum(), [positive])
        assert_gradients_close(lambda ts: ts[0].sqrt().sum(), [positive])

    def test_relu_and_abs(self):
        x = randn(4, 5) + 0.05  # keep away from the kink
        assert_gradients_close(lambda ts: ts[0].relu().sum(), [x])
        assert_gradients_close(lambda ts: ts[0].abs().sum(), [x])

    def test_pow(self):
        x = np.abs(randn(3, 3)) + 0.5
        assert_gradients_close(lambda ts: (ts[0] ** 3).sum(), [x])
        assert_gradients_close(lambda ts: (ts[0] ** 0.5).sum(), [x])

    def test_reductions(self):
        x = randn(3, 4)
        assert_gradients_close(lambda ts: ts[0].sum(axis=0).sum(), [x])
        assert_gradients_close(lambda ts: ts[0].mean(axis=1).sum(), [x])
        assert_gradients_close(lambda ts: ts[0].mean(), [x])

    def test_max_reduction(self):
        x = randn(3, 4)  # distinct values w.p. 1
        assert_gradients_close(lambda ts: ts[0].max(axis=1).sum(), [x])
        assert_gradients_close(lambda ts: ts[0].max(), [x])

    def test_shape_ops_gradients(self):
        x = randn(2, 3, 4)
        assert_gradients_close(lambda ts: (ts[0].reshape(6, 4) ** 2).sum(), [x])
        assert_gradients_close(lambda ts: (ts[0].transpose(1, 0, 2) ** 2).sum(), [x])
        assert_gradients_close(lambda ts: (ts[0][0] ** 2).sum(), [x])
        assert_gradients_close(lambda ts: (ts[0][:, 1:3, ::2] ** 2).sum(), [x])

    def test_gather_duplicate_indices(self):
        x = randn(5, 3)
        idx = np.array([0, 2, 2, 4])
        assert_gradients_close(lambda ts: (ts[0][idx] ** 2).sum(), [x])

    def test_pad(self):
        x = randn(2, 3)
        assert_gradients_close(lambda ts: (ts[0].pad(((1, 1), (2, 0))) ** 2).sum(), [x])

    def test_concat_stack_where_maximum(self):
        a, b = randn(2, 3), randn(2, 3)
        assert_gradients_close(lambda ts: (concatenate(ts, axis=1) ** 2).sum(), [a, b])
        assert_gradients_close(lambda ts: (stack(ts, axis=0) ** 2).sum(), [a, b])
        cond = randn(2, 3) > 0
        assert_gradients_close(lambda ts: (where(cond, ts[0], ts[1]) ** 2).sum(), [a, b])
        assert_gradients_close(lambda ts: (maximum(ts[0], ts[1]) ** 2).sum(), [a, b + 0.3])

    def test_clip(self):
        x = randn(4, 4) * 2
        # Move points off the clip boundaries so finite differences are clean.
        x = x + 0.05 * np.sign(x)
        assert_gradients_close(lambda ts: (ts[0].clip(-1.0, 1.0) ** 2).sum(), [x])


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
           elements=st.floats(-3, 3, allow_nan=False)),
)
def test_property_sum_gradient_is_ones(x):
    """d(sum(x))/dx == 1 for every element, any shape."""
    t = Tensor(x.copy(), requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, (3, 4), elements=st.floats(-3, 3, allow_nan=False)),
    arrays(np.float64, (3, 4), elements=st.floats(-3, 3, allow_nan=False)),
)
def test_property_add_commutes(a, b):
    np.testing.assert_allclose((tensor(a) + tensor(b)).data, (tensor(b) + tensor(a)).data)


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, (4, 3), elements=st.floats(-2, 2, allow_nan=False)),
)
def test_property_double_transpose_is_identity(x):
    t = tensor(x)
    np.testing.assert_allclose(t.T.T.data, x)


def test_zeros_ones_helpers():
    assert zeros((2, 3)).shape == (2, 3)
    assert float(zeros((2, 3)).data.sum()) == 0.0
