"""Tests for GRU/LSTM recurrence and Conv2d/MaxPool2d."""

import numpy as np

import repro.nn as nn

from ..gradcheck import assert_gradients_close

RNG = np.random.default_rng(43)


def randn(*shape):
    return RNG.standard_normal(shape)


class TestGRU:
    def test_shapes(self):
        gru = nn.GRU(6, 10, rng=np.random.default_rng(0))
        seq, h = gru(nn.tensor(randn(3, 7, 6)))
        assert seq.shape == (3, 7, 10)
        assert h.shape == (3, 10)

    def test_final_state_is_last_output(self):
        gru = nn.GRU(4, 5, rng=np.random.default_rng(0))
        seq, h = gru(nn.tensor(randn(2, 6, 4)))
        np.testing.assert_allclose(seq.data[:, -1], h.data)

    def test_lengths_freeze_states(self):
        """Finished sequences must not evolve past their length."""
        gru = nn.GRU(4, 5, rng=np.random.default_rng(0))
        x = randn(2, 6, 4)
        lengths = np.array([3, 6])
        seq, h = gru(nn.tensor(x), lengths=lengths)
        np.testing.assert_allclose(seq.data[0, 2], seq.data[0, 5])
        np.testing.assert_allclose(h.data[0], seq.data[0, 2])

    def test_lengths_equal_truncation(self):
        """GRU(x, length=k) final state == GRU(x[:k]) final state."""
        gru = nn.GRU(4, 5, rng=np.random.default_rng(1))
        x = randn(1, 6, 4)
        _, h_masked = gru(nn.tensor(x), lengths=np.array([4]))
        _, h_trunc = gru(nn.tensor(x[:, :4]))
        np.testing.assert_allclose(h_masked.data, h_trunc.data, atol=1e-12)

    def test_bptt_gradients(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(2))
        x = randn(2, 4, 3)

        def forward(ts):
            _, h = gru(ts[0])
            return (h ** 2).sum()

        assert_gradients_close(forward, [x], atol=1e-5)

    def test_learns_simple_task(self):
        # Predict the mean of the sequence elements (sanity: the cell trains).
        rng = np.random.default_rng(0)
        gru = nn.GRU(2, 8, rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        params = gru.parameters() + head.parameters()
        opt = nn.Adam(params, lr=1e-2)
        x = rng.standard_normal((16, 5, 2))
        y = x.mean(axis=(1, 2), keepdims=False)[:, None]
        first = last = None
        for step in range(40):
            opt.zero_grad()
            _, h = gru(nn.tensor(x))
            loss = ((head(h) - nn.tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
            if step == 0:
                first = loss.item()
            last = loss.item()
        assert last < first * 0.5


class TestLSTM:
    def test_shapes(self):
        lstm = nn.LSTM(6, 9, rng=np.random.default_rng(0))
        seq, h = lstm(nn.tensor(randn(2, 5, 6)))
        assert seq.shape == (2, 5, 9)
        assert h.shape == (2, 9)

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(3, 4, rng=np.random.default_rng(0))
        np.testing.assert_allclose(cell.bias.data[4:8], np.ones(4))

    def test_lengths_freeze_states(self):
        lstm = nn.LSTM(4, 5, rng=np.random.default_rng(0))
        x = randn(2, 6, 4)
        seq, h = lstm(nn.tensor(x), lengths=np.array([2, 6]))
        np.testing.assert_allclose(h.data[0], seq.data[0, 1])

    def test_bptt_gradients(self):
        lstm = nn.LSTM(3, 4, rng=np.random.default_rng(2))
        x = randn(1, 3, 3)

        def forward(ts):
            _, h = lstm(ts[0])
            return (h ** 2).sum()

        assert_gradients_close(forward, [x], atol=1e-5)


class TestConv2d:
    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1,
                         rng=np.random.default_rng(0))
        out = conv(nn.tensor(randn(2, 3, 16, 16)))
        assert out.shape == (2, 8, 8, 8)

    def test_matches_scipy_correlate(self):
        from scipy.signal import correlate2d

        conv = nn.Conv2d(1, 1, kernel_size=3, bias=False, rng=np.random.default_rng(0))
        x = randn(1, 1, 8, 8)
        out = conv(nn.tensor(x)).data[0, 0]
        expected = correlate2d(x[0, 0], conv.weight.data[0, 0], mode="valid")
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_gradients_numeric(self):
        conv = nn.Conv2d(2, 3, kernel_size=3, stride=2, padding=1,
                         rng=np.random.default_rng(1))
        x = randn(1, 2, 6, 6)

        def forward(ts):
            return (conv(ts[0]) ** 2).sum()

        assert_gradients_close(forward, [x], atol=1e-5)

    def test_weight_and_bias_gradients(self):
        conv = nn.Conv2d(1, 2, kernel_size=2, rng=np.random.default_rng(0))
        conv(nn.tensor(randn(2, 1, 5, 5))).sum().backward()
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None
        assert conv.weight.grad.shape == conv.weight.shape


class TestPooling:
    def test_maxpool_values(self):
        pool = nn.MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = pool(nn.tensor(x))
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_argmax(self):
        pool = nn.MaxPool2d(2)
        x = nn.tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4),
                      requires_grad=True)
        pool(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_global_average_pool(self):
        gap = nn.AdaptiveAvgPool2d()
        x = randn(2, 3, 5, 5)
        np.testing.assert_allclose(gap(nn.tensor(x)).data, x.mean(axis=(2, 3)))
