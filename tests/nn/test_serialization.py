"""Tests for npz checkpoint round-tripping."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import load_into, load_state, save_state


def build_model(seed):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))


def test_roundtrip_through_disk(tmp_path):
    model = build_model(0)
    path = str(tmp_path / "ckpt.npz")
    save_state(path, model)

    clone = build_model(99)
    load_into(path, clone)

    x = np.random.default_rng(1).standard_normal((5, 4))
    np.testing.assert_allclose(model(nn.tensor(x)).data, clone(nn.tensor(x)).data)


def test_save_accepts_raw_dict(tmp_path):
    path = str(tmp_path / "raw.npz")
    save_state(path, {"a.b": np.arange(3.0)})
    state = load_state(path)
    np.testing.assert_allclose(state["a.b"], [0, 1, 2])


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_state(str(tmp_path / "nope.npz"))


def test_load_resolves_appended_npz_suffix(tmp_path):
    # numpy appends .npz automatically; loader must find either spelling.
    path = str(tmp_path / "model")
    save_state(path + ".npz", build_model(0))
    state = load_state(path)
    assert any(key.endswith("weight") for key in state)


def test_loaded_state_is_a_copy(tmp_path):
    model = build_model(0)
    path = str(tmp_path / "ckpt.npz")
    save_state(path, model)
    state = load_state(path)
    key = next(iter(state))
    state[key][...] = 0.0
    reloaded = load_state(path)
    assert not np.allclose(reloaded[key], 0.0)
