"""Tests for vanilla multi-head self-attention and transformer encoder."""

import numpy as np
import pytest

import repro.nn as nn

from ..gradcheck import assert_gradients_close

RNG = np.random.default_rng(31)


def randn(*shape):
    return RNG.standard_normal(shape)


class TestMultiHeadSelfAttention:
    def test_output_and_attention_shapes(self):
        msm = nn.MultiHeadSelfAttention(16, 4, rng=np.random.default_rng(0))
        msm.eval()
        out, attn = msm(nn.tensor(randn(2, 7, 16)))
        assert out.shape == (2, 7, 16)
        assert attn.shape == (2, 4, 7, 7)

    def test_attention_rows_are_distributions(self):
        msm = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        msm.eval()
        _, attn = msm(nn.tensor(randn(3, 5, 8)))
        np.testing.assert_allclose(attn.data.sum(axis=-1), np.ones((3, 2, 5)), atol=1e-9)

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)

    def test_padding_mask_zeroes_attention(self):
        msm = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        msm.eval()
        mask = np.zeros((2, 5), dtype=bool)
        mask[:, 3:] = True
        _, attn = msm(nn.tensor(randn(2, 5, 8)), key_padding_mask=mask)
        np.testing.assert_allclose(attn.data[..., 3:], 0.0, atol=1e-12)

    def test_padding_does_not_change_valid_outputs(self):
        """Encoding [x ; padding] must equal encoding x at the valid rows."""
        msm = nn.MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(0))
        msm.eval()
        x = randn(1, 4, 8)
        out_short, _ = msm(nn.tensor(x))
        x_padded = np.concatenate([x, np.zeros((1, 3, 8))], axis=1)
        mask = np.array([[False] * 4 + [True] * 3])
        out_padded, _ = msm(nn.tensor(x_padded), key_padding_mask=mask)
        np.testing.assert_allclose(out_padded.data[:, :4], out_short.data, atol=1e-10)

    def test_gradients_reach_all_projections(self):
        msm = nn.MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(0))
        out, _ = msm(nn.tensor(randn(2, 4, 8)))
        out.sum().backward()
        for name, p in msm.named_parameters():
            assert p.grad is not None, f"no grad for {name}"
            assert np.abs(p.grad).sum() > 0, f"zero grad for {name}"

    def test_numeric_gradient_through_attention(self):
        msm = nn.MultiHeadSelfAttention(4, 2, dropout=0.0, rng=np.random.default_rng(1))
        msm.eval()
        x = randn(1, 3, 4)

        def forward(ts):
            out, _ = msm(ts[0])
            return (out ** 2).sum()

        assert_gradients_close(forward, [x], atol=1e-5)


class TestTransformerEncoder:
    def test_stack_shapes(self):
        enc = nn.TransformerEncoder(16, 4, num_layers=3, rng=np.random.default_rng(0))
        enc.eval()
        out, attn = enc(nn.tensor(randn(2, 6, 16)))
        assert out.shape == (2, 6, 16)
        assert attn.shape == (2, 4, 6, 6)
        assert len(enc.layers) == 3

    def test_returns_last_layer_attention(self):
        """Paper: DualMSM fuses A_s 'of the last stacked layer'."""
        enc = nn.TransformerEncoder(8, 2, num_layers=2, dropout=0.0,
                                    rng=np.random.default_rng(0))
        enc.eval()
        x = nn.tensor(randn(1, 5, 8))
        _, attn_stack = enc(x)
        # Manually run the two layers and compare with the returned attention.
        h, _ = enc.layers[0](x)
        _, attn_manual = enc.layers[1](h)
        np.testing.assert_allclose(attn_stack.data, attn_manual.data)

    def test_encoder_trains_end_to_end(self):
        rng = np.random.default_rng(5)
        enc = nn.TransformerEncoder(8, 2, num_layers=1, dropout=0.0, rng=rng)
        opt = nn.Adam(enc.parameters(), lr=1e-2)
        x = randn(4, 5, 8)
        target = randn(4, 5, 8)
        losses = []
        for _ in range(30):
            opt.zero_grad()
            out, _ = enc(nn.tensor(x))
            loss = ((out - nn.tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8, "encoder failed to fit a small target"
