"""Edge-case and robustness tests across the nn substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.nn as nn
import repro.nn.functional as F
from repro.nn import Tensor


RNG = np.random.default_rng(131)


class TestTensorEdgeCases:
    def test_scalar_tensor_operations(self):
        x = nn.tensor(3.0, requires_grad=True)
        y = x * x + x
        y.backward()
        assert x.grad == pytest.approx(7.0)

    def test_zero_size_axis_sum(self):
        x = nn.tensor(np.zeros((0, 4)))
        assert x.sum(axis=0).shape == (4,)

    def test_repr_does_not_crash_on_large(self):
        assert "Tensor" in repr(nn.tensor(np.zeros((100, 100))))

    def test_grad_not_shared_between_tensors(self):
        x = nn.tensor([1.0], requires_grad=True)
        y = nn.tensor([1.0], requires_grad=True)
        (x * 2).backward()
        assert y.grad is None

    def test_pow_type_error(self):
        x = nn.tensor([2.0], requires_grad=True)
        with pytest.raises(TypeError):
            x ** nn.tensor([2.0])

    def test_detach_shares_data(self):
        x = nn.tensor([1.0, 2.0], requires_grad=True)
        d = x.detach()
        assert d.data is x.data

    def test_copy_is_independent(self):
        x = nn.tensor([1.0, 2.0])
        c = x.copy()
        c.data[0] = 99.0
        assert x.data[0] == 1.0

    def test_min_reduction_gradient(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        x.min(axis=1).sum().backward()
        # exactly one gradient entry per row (distinct values a.s.)
        np.testing.assert_array_equal((x.grad != 0).sum(axis=1), np.ones(3))

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)))
    def test_property_backward_twice_accumulates(self, data):
        x = Tensor(data.copy(), requires_grad=True)
        (x * 2).sum().backward()
        first = x.grad.copy()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * first)


class TestModuleEdgeCases:
    def test_sequential_getitem_and_len(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)

    def test_module_list_iteration(self):
        layers = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert sum(1 for _ in layers) == 3
        assert layers[2] is list(layers)[2]

    def test_empty_module_has_no_parameters(self):
        class Empty(nn.Module):
            pass

        assert Empty().parameters() == []
        assert Empty().num_parameters() == 0

    def test_nested_state_dict_keys(self):
        outer = nn.Sequential(nn.Sequential(nn.Linear(2, 2)))
        keys = set(outer.state_dict())
        assert keys == {"0.0.weight", "0.0.bias"}

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestNumericalStability:
    def test_softmax_all_equal_logits(self):
        out = F.softmax(nn.tensor(np.zeros((2, 5))))
        np.testing.assert_allclose(out.data, 0.2)

    def test_layer_norm_constant_rows(self):
        x = nn.tensor(np.full((3, 8), 7.0))
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, 0.0, atol=1e-3)

    def test_normalize_zero_vector(self):
        out = F.normalize(nn.tensor(np.zeros((2, 4))))
        assert np.isfinite(out.data).all()

    def test_cosine_zero_vectors(self):
        zero = nn.tensor(np.zeros((2, 4)))
        out = F.cosine_similarity(zero, zero)
        assert np.isfinite(out.data).all()

    def test_l2_distance_identical_points_has_finite_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.l2_distance(a, Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert np.isfinite(a.grad).all()

    def test_adam_with_tiny_gradients(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        for _ in range(3):
            opt.zero_grad()
            (p * 1e-12).sum().backward()
            opt.step()
        assert np.isfinite(p.data).all()


class TestGRULSTMEdgeCases:
    def test_single_timestep(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        seq, h = gru(nn.tensor(RNG.standard_normal((2, 1, 3))))
        assert seq.shape == (2, 1, 4)
        np.testing.assert_allclose(seq.data[:, 0], h.data)

    def test_zero_length_sequence_keeps_initial_state(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        _, h = gru(nn.tensor(RNG.standard_normal((1, 5, 3))),
                   lengths=np.array([0]))
        np.testing.assert_allclose(h.data, 0.0)

    def test_lstm_single_batch(self):
        lstm = nn.LSTM(2, 3, rng=np.random.default_rng(0))
        seq, h = lstm(nn.tensor(RNG.standard_normal((1, 4, 2))))
        assert seq.shape == (1, 4, 3)
