"""Tests for fused functional ops (softmax, layer norm, pooling, distances)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.nn.functional as F
from repro.nn import Tensor, tensor

from ..gradcheck import assert_gradients_close

RNG = np.random.default_rng(11)


def randn(*shape):
    return RNG.standard_normal(shape)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(tensor(randn(4, 7)), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_stability_with_large_logits(self):
        out = F.softmax(tensor([[1000.0, 1000.0, -1000.0]]), axis=-1)
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data[0, :2], [0.5, 0.5])

    def test_gradient(self):
        x = randn(3, 5)
        assert_gradients_close(lambda ts: (F.softmax(ts[0]) ** 2).sum(), [x])

    def test_log_softmax_consistency(self):
        x = tensor(randn(2, 6))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )

    def test_log_softmax_gradient(self):
        x = randn(3, 5)
        coeff = randn(3, 5)
        assert_gradients_close(lambda ts: (F.log_softmax(ts[0]) * coeff).sum(), [x])

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, (3, 4), elements=st.floats(-10, 10, allow_nan=False)))
    def test_property_shift_invariance(self, x):
        """softmax(x + c) == softmax(x)."""
        a = F.softmax(tensor(x)).data
        b = F.softmax(tensor(x + 123.4)).data
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestLayerNorm:
    def test_normalizes_rows(self):
        x = tensor(randn(4, 8) * 5 + 3)
        gamma, beta = Tensor(np.ones(8)), Tensor(np.zeros(8))
        out = F.layer_norm(x, gamma, beta).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-4)

    def test_gradient_all_inputs(self):
        x, gamma, beta = randn(3, 6), np.abs(randn(6)) + 0.5, randn(6)
        assert_gradients_close(
            lambda ts: (F.layer_norm(ts[0], ts[1], ts[2]) ** 2).sum(),
            [x, gamma, beta],
            atol=1e-5,
        )


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = tensor(randn(5, 5))
        out = F.dropout(x, p=0.5, training=False)
        assert out is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_gradient_respects_mask(self):
        rng = np.random.default_rng(3)
        x = Tensor(randn(6, 6), requires_grad=True)
        out = F.dropout(x, p=0.5, training=True, rng=rng)
        out.sum().backward()
        zeroed = out.data == 0
        assert (x.grad[zeroed] == 0).all()

    def test_invalid_probability(self):
        import pytest

        with pytest.raises(ValueError):
            F.dropout(tensor(randn(2, 2)), p=1.0, training=True)


class TestMeanPool:
    def test_full_lengths_equals_plain_mean(self):
        x = randn(3, 5, 4)
        np.testing.assert_allclose(
            F.mean_pool(tensor(x), lengths=np.array([5, 5, 5])).data,
            x.mean(axis=1),
        )

    def test_partial_lengths_ignore_padding(self):
        x = randn(2, 4, 3)
        x[0, 2:] = 999.0  # padded garbage must not affect the mean
        out = F.mean_pool(tensor(x), lengths=np.array([2, 4])).data
        np.testing.assert_allclose(out[0], x[0, :2].mean(axis=0))
        np.testing.assert_allclose(out[1], x[1].mean(axis=0))

    def test_gradient(self):
        x = randn(2, 4, 3)
        lengths = np.array([2, 3])
        assert_gradients_close(
            lambda ts: (F.mean_pool(ts[0], lengths=lengths) ** 2).sum(), [x]
        )

    def test_rejects_bad_rank(self):
        import pytest

        with pytest.raises(ValueError):
            F.mean_pool(tensor(randn(3, 4)))


class TestDistances:
    def test_l1_matches_numpy(self):
        a, b = randn(5, 8), randn(5, 8)
        np.testing.assert_allclose(
            F.l1_distance(tensor(a), tensor(b)).data,
            np.abs(a - b).sum(axis=-1),
        )

    def test_l2_matches_numpy(self):
        a, b = randn(5, 8), randn(5, 8)
        np.testing.assert_allclose(
            F.l2_distance(tensor(a), tensor(b)).data,
            np.linalg.norm(a - b, axis=-1),
            atol=1e-6,
        )

    def test_cosine_bounds_and_self_similarity(self):
        a = randn(6, 4)
        sim_self = F.cosine_similarity(tensor(a), tensor(a)).data
        np.testing.assert_allclose(sim_self, np.ones(6), atol=1e-6)
        b = randn(6, 4)
        sim = F.cosine_similarity(tensor(a), tensor(b)).data
        assert (sim <= 1.0 + 1e-9).all() and (sim >= -1.0 - 1e-9).all()

    def test_normalize_unit_norm(self):
        x = F.normalize(tensor(randn(7, 5)))
        np.testing.assert_allclose(np.linalg.norm(x.data, axis=-1), np.ones(7), atol=1e-6)

    def test_cosine_gradient(self):
        a, b = randn(4, 5), randn(4, 5)
        assert_gradients_close(
            lambda ts: F.cosine_similarity(ts[0], ts[1]).sum(), [a, b], atol=1e-5
        )


class TestAttentionMaskBias:
    def test_none_passthrough(self):
        assert F.attention_mask_bias(None, 4) is None

    def test_bias_shape_and_values(self):
        mask = np.array([[False, True, True], [False, False, True]])
        bias = F.attention_mask_bias(mask, num_heads=2)
        assert bias.shape == (2, 1, 1, 3)
        assert bias[0, 0, 0, 1] == -1e9
        assert bias[0, 0, 0, 0] == 0.0

    def test_masked_positions_get_zero_attention(self):
        mask = np.array([[False, False, True]])
        logits = tensor(np.zeros((1, 1, 3, 3)))
        out = F.softmax(logits + F.attention_mask_bias(mask, 1), axis=-1)
        np.testing.assert_allclose(out.data[0, 0, :, 2], np.zeros(3), atol=1e-12)
        np.testing.assert_allclose(out.data[0, 0, 0, :2], [0.5, 0.5])
