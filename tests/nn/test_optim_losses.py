"""Tests for optimizers, LR schedule, gradient clipping, and losses."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Parameter
from repro.nn.losses import info_nce_loss, mse_loss, triplet_margin_loss, weighted_rank_loss

RNG = np.random.default_rng(59)


def randn(*shape):
    return RNG.standard_normal(shape)


def quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [0, 0], atol=1e-6)

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = nn.SGD([p1], lr=0.01)
        momentum = nn.SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(20):
            for p, opt in [(p1, plain), (p2, momentum)]:
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        assert np.abs(p2.data).sum() < np.abs(p1.data).sum()

    def test_requires_trainable_params(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([quadratic_param()], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [0, 0], atol=1e-4)

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first update ≈ lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        opt.zero_grad()
        (p * 3.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1], atol=1e-6)

    def test_weight_decay_pulls_to_zero(self):
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.05, weight_decay=1.0)
        for _ in range(200):
            opt.zero_grad()
            (p * 0.0).sum().backward()  # zero data gradient; only decay acts
            opt.step()
        assert abs(p.item()) < 0.1

    def test_skips_params_without_grad(self):
        p1, p2 = quadratic_param(), quadratic_param()
        opt = nn.Adam([p1, p2], lr=0.1)
        (p1 * p1).sum().backward()
        before = p2.data.copy()
        opt.step()
        np.testing.assert_allclose(p2.data, before)


class TestStepLR:
    def test_paper_schedule(self):
        """lr 0.001 halved every 5 epochs (paper §V-A)."""
        p = quadratic_param()
        opt = nn.Adam([p], lr=1e-3)
        sched = nn.StepLR(opt, step_size=5, gamma=0.5)
        lrs = []
        for _ in range(12):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs[3], 1e-3)   # epoch 4
        np.testing.assert_allclose(lrs[4], 5e-4)   # epoch 5
        np.testing.assert_allclose(lrs[9], 2.5e-4)  # epoch 10

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            nn.StepLR(nn.Adam([quadratic_param()]), step_size=0)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        total = nn.clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients_alone(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        nn.clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))


class TestMSELoss:
    def test_value(self):
        pred = nn.tensor([[1.0, 2.0]], requires_grad=True)
        loss = mse_loss(pred, np.array([[0.0, 0.0]]))
        assert loss.item() == pytest.approx((1 + 4) / 2)

    def test_gradient_direction(self):
        pred = nn.tensor([2.0], requires_grad=True)
        mse_loss(pred, np.array([0.0])).backward()
        assert pred.grad[0] > 0


class TestInfoNCE:
    def test_perfect_alignment_gives_low_loss(self):
        z = nn.tensor(np.eye(4)[:2], requires_grad=True)
        z_pos = nn.tensor(np.eye(4)[:2])
        negatives = -np.eye(4)[:3]
        loss_aligned = info_nce_loss(z, z_pos, negatives, temperature=0.07)

        z_bad = nn.tensor(-np.eye(4)[:2], requires_grad=True)
        loss_misaligned = info_nce_loss(z_bad, z_pos, negatives, temperature=0.07)
        assert loss_aligned.item() < loss_misaligned.item()

    def test_no_negatives_degenerate_case(self):
        z = nn.tensor(randn(3, 8), requires_grad=True)
        loss = info_nce_loss(z, nn.tensor(randn(3, 8)), None)
        assert loss.item() == pytest.approx(0.0)  # single-class softmax

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            info_nce_loss(nn.tensor(randn(2, 4)), nn.tensor(randn(2, 4)),
                          randn(3, 4), temperature=0.0)

    def test_gradients_only_flow_to_anchor(self):
        z = nn.tensor(randn(3, 8), requires_grad=True)
        z_pos = nn.tensor(randn(3, 8), requires_grad=True)
        loss = info_nce_loss(z, z_pos, randn(5, 8))
        loss.backward()
        assert z.grad is not None
        assert z_pos.grad is None, "momentum branch must not receive gradients"

    def test_more_negatives_increase_loss(self):
        rng = np.random.default_rng(0)
        z_data = rng.standard_normal((4, 8))
        pos = nn.tensor(z_data + 0.01 * rng.standard_normal((4, 8)))
        few = info_nce_loss(nn.tensor(z_data, requires_grad=True), pos,
                            rng.standard_normal((2, 8)))
        many = info_nce_loss(nn.tensor(z_data, requires_grad=True), pos,
                             rng.standard_normal((64, 8)))
        assert many.item() > few.item()

    def test_training_pulls_positives_together(self):
        rng = np.random.default_rng(1)
        z = Parameter(rng.standard_normal((4, 8)))
        target = rng.standard_normal((4, 8))
        negatives = rng.standard_normal((16, 8))
        opt = nn.Adam([z], lr=0.05)
        initial = info_nce_loss(z, nn.tensor(target), negatives).item()
        for _ in range(50):
            opt.zero_grad()
            info_nce_loss(z, nn.tensor(target), negatives).backward()
            opt.step()
        final = info_nce_loss(z, nn.tensor(target), negatives).item()
        assert final < initial * 0.5


class TestRankingLosses:
    def test_triplet_zero_when_separated(self):
        anchor = nn.tensor(np.zeros((2, 3)), requires_grad=True)
        positive = nn.tensor(np.zeros((2, 3)))
        negative = nn.tensor(np.full((2, 3), 10.0))
        loss = triplet_margin_loss(anchor, positive, negative, margin=1.0)
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_triplet_positive_when_violated(self):
        anchor = nn.tensor(np.zeros((2, 3)), requires_grad=True)
        positive = nn.tensor(np.full((2, 3), 10.0))
        negative = nn.tensor(np.zeros((2, 3)))
        loss = triplet_margin_loss(anchor, positive, negative, margin=1.0)
        assert loss.item() > 1.0

    def test_weighted_rank_loss_weighting(self):
        pred = nn.tensor([1.0, 1.0], requires_grad=True)
        target = np.array([0.0, 0.0])
        unweighted = weighted_rank_loss(pred, target)
        weighted = weighted_rank_loss(pred, target, weights=np.array([2.0, 2.0]))
        assert weighted.item() == pytest.approx(2 * unweighted.item())
