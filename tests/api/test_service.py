"""Tests for repro.api.SimilarityService: composition, kNN semantics,
embedding cache, and save/load round-trips."""

import numpy as np
import pytest

from repro.api import (
    SimilarityService,
    available_indexes,
    get_backend,
    get_index,
)

from .test_registry import make_trajectories


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=16, seed=3)


@pytest.fixture(scope="module")
def trajcl_backend(trajectories):
    return get_backend("trajcl", trajectories=trajectories, dim=8, max_len=16,
                       epochs=1, seed=0)


@pytest.fixture()
def trajcl_service(trajcl_backend, trajectories):
    return SimilarityService(backend=trajcl_backend).add(trajectories)


class TestComposition:
    def test_index_registry(self):
        assert {"bruteforce", "ivf", "segment"} <= set(available_indexes())
        with pytest.raises(KeyError, match="unknown index"):
            get_index("no-such-index")

    def test_defaults_by_backend_kind(self, trajcl_backend):
        assert SimilarityService(backend=trajcl_backend).index.name == "bruteforce"
        assert SimilarityService(backend="hausdorff").index.name == "segment"
        assert SimilarityService(backend="edr").index is None

    def test_rejects_mismatched_pairs(self, trajcl_backend):
        with pytest.raises(ValueError, match="distance backend"):
            SimilarityService(backend="edr", index="ivf")
        with pytest.raises(ValueError, match="compose it with a distance"):
            SimilarityService(backend=trajcl_backend, index="segment")

    def test_rejects_segment_index_for_other_measures(self):
        # The segment index answers Hausdorff kNN; composing it with EDR
        # would silently return neighbours under the wrong measure.
        with pytest.raises(ValueError, match="wrong measure"):
            SimilarityService(backend="edr", index="segment")

    def test_default_index_follows_backend_metric(self, trajcl_backend):
        from repro.api import EmbeddingBackend

        l2_backend = EmbeddingBackend("trajcl", trajcl_backend.model,
                                      metric="l2")
        service = SimilarityService(backend=l2_backend)
        assert service.index.metric == "l2"
        assert SimilarityService(backend=l2_backend, index="ivf").index.metric == "l2"


class TestKnn:
    def test_exclude_keeps_k_results(self, trajcl_service, trajectories):
        distances, ids = trajcl_service.knn(trajectories[3], k=3, exclude=3)
        assert ids.shape == (1, 3)
        assert 3 not in ids[0]
        assert (ids[0] >= 0).all()
        assert np.isfinite(distances).all()
        assert (np.diff(distances[0]) >= 0).all()

    def test_dedupe_eps_drops_copy_matches(self, trajcl_service, trajectories):
        # Query is a *copy* of a database member: not excludable by id,
        # but its zero-distance self-match must not eat a result slot.
        _, with_exclude = trajcl_service.knn(trajectories[3], k=3, exclude=3)
        _, with_eps = trajcl_service.knn(trajectories[3].copy(), k=3,
                                         dedupe_eps=1e-9)
        np.testing.assert_array_equal(with_exclude, with_eps)

    def test_without_filtering_self_ranks_first(self, trajcl_service,
                                                trajectories):
        distances, ids = trajcl_service.knn(trajectories[3], k=3)
        assert ids[0, 0] == 3
        assert distances[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_small_database_pads(self, trajcl_backend, trajectories):
        service = SimilarityService(backend=trajcl_backend).add(trajectories[:2])
        distances, ids = service.knn(trajectories[0], k=5, exclude=0)
        assert ids.shape == (1, 5)
        assert (ids[0, 1:] == -1).all()
        assert np.isinf(distances[0, 1:]).all()

    def test_distance_backend_scan_matches_pairwise(self, trajectories):
        service = SimilarityService(backend="edr").add(trajectories)
        matrix = service.pairwise([trajectories[5]])
        matrix[0, 5] = np.inf
        _, ids = service.knn(trajectories[5], k=3, exclude=5)
        np.testing.assert_array_equal(ids[0], np.argsort(matrix[0])[:3])

    def test_segment_index_agrees_with_bruteforce_hausdorff(self, trajectories):
        indexed = SimilarityService(backend="hausdorff", index="segment")
        scanned = SimilarityService(backend="hausdorff", index=None)
        indexed.add(trajectories)
        scanned.add(trajectories)
        _, ids_indexed = indexed.knn(trajectories[1], k=3, exclude=1)
        _, ids_scanned = scanned.knn(trajectories[1], k=3, exclude=1)
        np.testing.assert_array_equal(ids_indexed, ids_scanned)

    def test_empty_service_raises(self, trajcl_backend):
        with pytest.raises(RuntimeError, match="empty"):
            SimilarityService(backend=trajcl_backend).knn(np.zeros((4, 2)), k=1)


class TestEmptyBatches:
    def test_encode_batch_empty_has_embedding_dim(self, trajcl_backend):
        service = SimilarityService(backend=trajcl_backend)
        empty = service.encode_batch([])
        assert empty.shape == (0, trajcl_backend.output_dim)

    def test_knn_empty_queries_well_shaped(self, trajcl_service):
        distances, ids = trajcl_service.knn([], k=4)
        assert distances.shape == (0, 4)
        assert ids.shape == (0, 4)
        assert ids.dtype == np.int64

    def test_pairwise_empty_queries_and_database(self, trajcl_service,
                                                 trajectories):
        assert trajcl_service.pairwise([]).shape == (0, len(trajectories))
        assert trajcl_service.pairwise(trajectories[:3], []).shape == (3, 0)

    def test_distance_backend_pairwise_empty(self, trajectories):
        service = SimilarityService(backend="edr").add(trajectories)
        assert service.pairwise([]).shape == (0, len(trajectories))


class TestStableTies:
    def test_scan_path_breaks_ties_by_database_id(self, trajectories):
        class TiedMeasure:
            name = "tied"

            def distance(self, a, b):
                return 1.0

            def pairwise(self, queries, database):
                return np.ones((len(queries), len(database)))

        service = SimilarityService(backend=TiedMeasure()).add(trajectories)
        _, ids = service.knn(trajectories[0], k=5)
        np.testing.assert_array_equal(ids[0], np.arange(5))
        _, ids = service.knn(trajectories[0], k=5, exclude=2)
        np.testing.assert_array_equal(ids[0], [0, 1, 3, 4, 5])

    def test_bruteforce_index_breaks_ties_by_database_id(self, trajcl_backend,
                                                         trajectories):
        # Duplicate trajectories embed identically: the vector-index path
        # must rank the equal-distance copies by database id, agreeing with
        # the scan path.
        service = SimilarityService(backend=trajcl_backend)
        service.add([trajectories[0]] * 4 + [trajectories[1]])
        _, ids = service.knn(trajectories[0], k=4)
        np.testing.assert_array_equal(ids[0], np.arange(4))


class TestCache:
    def test_encode_batch_caches_by_content(self, trajcl_backend, trajectories):
        service = SimilarityService(backend=trajcl_backend, batch_size=4)
        first = service.encode_batch(trajectories)
        misses = service.cache_misses
        second = service.encode_batch(list(trajectories))
        np.testing.assert_allclose(first, second)
        assert service.cache_misses == misses  # all hits the second time
        assert service.cache_hits >= len(trajectories)

    def test_cache_eviction_bounds_memory(self, trajcl_backend, trajectories):
        service = SimilarityService(backend=trajcl_backend, cache_size=4)
        service.encode_batch(trajectories)
        assert len(service._cache) <= 4

    def test_cache_key_distinguishes_dtypes(self):
        # Byte-identical buffers under different dtypes must never collide.
        as_float = np.zeros((4, 2), dtype=np.float64)
        as_int = np.zeros((4, 2), dtype=np.int64)
        assert as_float.tobytes() == as_int.tobytes()
        assert (SimilarityService._cache_key(as_float)
                != SimilarityService._cache_key(as_int))

    def test_cache_info_counters(self, trajcl_backend, trajectories):
        service = SimilarityService(backend=trajcl_backend)
        info = service.cache_info()
        assert info.hits == info.misses == info.size == 0
        service.encode_batch(trajectories[:4])
        service.encode_batch(trajectories[:4])
        info = service.cache_info()
        assert info == (4, 4, 4, service.cache_size)


class TestSaveLoad:
    def test_trajcl_roundtrip_knn_identical(self, trajcl_service, trajectories,
                                            tmp_path):
        path = str(tmp_path / "service.npz")
        before_d, before_i = trajcl_service.knn(trajectories[2], k=4, exclude=2)
        trajcl_service.save(path)
        restored = SimilarityService.load(path)
        after_d, after_i = restored.knn(trajectories[2], k=4, exclude=2)
        np.testing.assert_array_equal(before_i, after_i)
        np.testing.assert_allclose(before_d, after_d)
        assert len(restored) == len(trajcl_service)

    def test_heuristic_roundtrip(self, trajectories, tmp_path):
        path = str(tmp_path / "hausdorff.npz")
        service = SimilarityService(backend="hausdorff").add(trajectories)
        before = service.knn(trajectories[0], k=3, exclude=0)
        service.save(path)
        restored = SimilarityService.load(path)
        after = restored.knn(trajectories[0], k=3, exclude=0)
        np.testing.assert_array_equal(before[1], after[1])
        np.testing.assert_allclose(before[0], after[0])

    def test_baseline_roundtrip_preserves_embeddings(self, trajectories,
                                                     tmp_path):
        path = str(tmp_path / "t2vec.npz")
        backend = get_backend("t2vec", trajectories=trajectories, dim=8,
                              max_len=16, epochs=1, seed=0)
        service = SimilarityService(backend=backend, index="ivf",
                                    index_kwargs={"seed": 0})
        service.add(trajectories)
        before = service.knn(trajectories[4], k=3, exclude=4)
        service.save(path)
        restored = SimilarityService.load(path)
        np.testing.assert_allclose(
            backend.encode(trajectories[:4]),
            restored.backend.encode(trajectories[:4]),
        )
        after = restored.knn(trajectories[4], k=3, exclude=4)
        np.testing.assert_array_equal(before[1], after[1])

    def test_roundtrip_preserves_metric(self, trajcl_backend, trajectories,
                                        tmp_path):
        from repro.api import EmbeddingBackend

        path = str(tmp_path / "l2.npz")
        l2_backend = EmbeddingBackend("trajcl", trajcl_backend.model,
                                      metric="l2")
        service = SimilarityService(backend=l2_backend).add(trajectories)
        before = service.knn(trajectories[0], k=3, exclude=0)
        service.save(path)
        restored = SimilarityService.load(path)
        assert restored.backend.metric == "l2"
        after = restored.knn(trajectories[0], k=3, exclude=0)
        np.testing.assert_array_equal(before[1], after[1])
        np.testing.assert_allclose(before[0], after[0])

    def test_load_rejects_wrong_files(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="not a SimilarityService"):
            SimilarityService.load(path)

    def test_include_cache_restores_warm(self, trajcl_backend, trajectories,
                                         tmp_path):
        path = str(tmp_path / "warm.npz")
        service = SimilarityService(backend=trajcl_backend).add(trajectories)
        before = service.encode_batch(trajectories)
        service.save(path, include_cache=True)
        restored = SimilarityService.load(path)
        after = restored.encode_batch(trajectories)
        info = restored.cache_info()
        assert info.misses == 0 and info.hits == len(trajectories)
        np.testing.assert_allclose(before, after)

    def test_cache_not_saved_by_default(self, trajcl_backend, trajectories,
                                        tmp_path):
        path = str(tmp_path / "cold.npz")
        service = SimilarityService(backend=trajcl_backend).add(trajectories)
        service.save(path)
        restored = SimilarityService.load(path)
        assert restored.cache_info().size == 0
