"""Tests for the HTTP/JSON gateway: JSON round-trip parity with the
wrapped service, traffic controls (rate limiting, shedding, deadlines),
input validation, and the Prometheus metrics exposition."""

import json
import re
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import QueryQueue, SimilarityService
from repro.api.gateway import (
    AdmissionController,
    LatencyHistogram,
    SimilarityGateway,
    TokenBucketLimiter,
)

from .test_registry import make_trajectories


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def request(gateway, path, body=None, headers=None, method=None):
    """One HTTP request; returns (status, headers, raw body) and never
    raises on 4xx/5xx so tests can assert on error replies."""
    data = None
    if body is not None:
        data = body if isinstance(body, bytes) else json.dumps(body).encode()
    req = urllib.request.Request(gateway.url + path, data=data,
                                 headers=headers or {}, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        with error:
            return error.code, dict(error.headers), error.read()


def request_json(gateway, path, body=None, headers=None, method=None):
    status, reply_headers, raw = request(gateway, path, body, headers, method)
    return status, reply_headers, json.loads(raw)


def as_lists(trajectories):
    return [np.asarray(t).tolist() for t in trajectories]


class _SlowService:
    """Delays every knn so deadline plumbing is observable."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.delay = delay

    def knn(self, queries, k, exclude=None, dedupe_eps=None):
        time.sleep(self.delay)
        return self.inner.knn(queries, k=k, exclude=exclude,
                              dedupe_eps=dedupe_eps)


class _GatedService:
    """Blocks knn until released — holds a request in flight on demand."""

    def __init__(self, inner):
        self.inner = inner
        self.started = threading.Event()
        self.gate = threading.Event()

    def knn(self, queries, k, exclude=None, dedupe_eps=None):
        self.started.set()
        assert self.gate.wait(timeout=30)
        return self.inner.knn(queries, k=k, exclude=exclude,
                              dedupe_eps=dedupe_eps)

    def pairwise(self, queries, database=None):
        return self.inner.pairwise(queries, database)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=16, seed=3)


@pytest.fixture(scope="module")
def service(trajectories):
    return SimilarityService(backend="hausdorff").add(trajectories)


@pytest.fixture()
def gateway(service):
    with SimilarityGateway(service) as gw:
        yield gw


# ----------------------------------------------------------------------
# JSON round-trip parity
# ----------------------------------------------------------------------
class TestRoutes:
    def test_knn_matches_local_service(self, gateway, service, trajectories):
        status, _, reply = request_json(
            gateway, "/knn",
            {"queries": as_lists(trajectories[:3]), "k": 4})
        assert status == 200
        expected_d, expected_i = service.knn(trajectories[:3], k=4)
        np.testing.assert_array_equal(np.asarray(reply["ids"]), expected_i)
        np.testing.assert_allclose(np.asarray(reply["distances"]), expected_d)
        assert reply["k"] == 4

    def test_knn_exclude_and_dedupe(self, gateway, service, trajectories):
        status, _, reply = request_json(
            gateway, "/knn",
            {"queries": as_lists(trajectories[2:3]), "k": 3, "exclude": 2,
             "dedupe_eps": 1e-9})
        assert status == 200
        expected_d, expected_i = service.knn(trajectories[2], k=3, exclude=2,
                                             dedupe_eps=1e-9)
        np.testing.assert_array_equal(np.asarray(reply["ids"]), expected_i)
        np.testing.assert_allclose(np.asarray(reply["distances"]), expected_d)
        assert 2 not in reply["ids"][0]

    def test_single_trajectory_body(self, gateway, service, trajectories):
        # A bare [[x, y], ...] list (not wrapped in a batch) is one query.
        status, _, reply = request_json(
            gateway, "/knn",
            {"queries": np.asarray(trajectories[0]).tolist(), "k": 2})
        assert status == 200
        assert np.asarray(reply["ids"]).shape == (1, 2)

    def test_default_k(self, gateway, trajectories):
        status, _, reply = request_json(
            gateway, "/knn", {"queries": as_lists(trajectories[:1])})
        assert status == 200
        assert reply["k"] == 10

    def test_pairwise_matches_local_service(self, gateway, service,
                                            trajectories):
        status, _, reply = request_json(
            gateway, "/pairwise", {"queries": as_lists(trajectories[:2])})
        assert status == 200
        np.testing.assert_allclose(np.asarray(reply["distances"]),
                                   service.pairwise(trajectories[:2]))

    def test_pairwise_explicit_database(self, gateway, service, trajectories):
        status, _, reply = request_json(
            gateway, "/pairwise",
            {"queries": as_lists(trajectories[:2]),
             "database": as_lists(trajectories[5:8])})
        assert status == 200
        np.testing.assert_allclose(
            np.asarray(reply["distances"]),
            service.pairwise(trajectories[:2], trajectories[5:8]))

    def test_add_grows_the_database(self, trajectories):
        own = SimilarityService(backend="hausdorff").add(trajectories[:10])
        with SimilarityGateway(own) as gw:
            status, _, reply = request_json(
                gw, "/add", {"trajectories": as_lists(trajectories[10:13])})
            assert status == 200
            assert reply == {"size": 13, "added": 3}
            status, _, reply = request_json(
                gw, "/knn", {"queries": as_lists(trajectories[12:13]),
                             "k": 1})
        assert reply["ids"][0][0] == 12

    def test_stats_reports_service_and_gateway(self, gateway, trajectories):
        request_json(gateway, "/knn",
                     {"queries": as_lists(trajectories[:1]), "k": 2})
        status, _, stats = request_json(gateway, "/stats")
        assert status == 200
        assert stats["backend"] == "hausdorff"
        assert stats["size"] == len(trajectories)
        gw_stats = stats["gateway"]
        assert gw_stats["requests_total"] >= 1
        assert gw_stats["inflight"] >= 0
        assert {"qps", "shed_total", "ratelimited_total",
                "deadline_expired_total"} <= set(gw_stats)

    def test_healthz_ok(self, gateway, trajectories):
        status, _, reply = request_json(gateway, "/healthz")
        assert status == 200
        assert reply["status"] == "ok"
        assert reply["size"] == len(trajectories)

    def test_index_lists_routes(self, gateway):
        status, _, reply = request_json(gateway, "/")
        assert status == 200
        assert "/knn" in reply["routes"]["POST"]

    def test_unknown_route_404(self, gateway):
        status, _, reply = request_json(gateway, "/nope", {"x": 1})
        assert status == 404
        assert "no such route" in reply["error"]

    def test_method_mismatch_405(self, gateway, trajectories):
        status, headers, _ = request_json(gateway, "/knn")  # GET
        assert status == 405
        assert headers["Allow"] == "POST"
        status, headers, _ = request_json(gateway, "/stats", {"x": 1})  # POST
        assert status == 405
        assert headers["Allow"] == "GET"


class TestValidation:
    def test_malformed_json_400(self, gateway):
        status, _, reply = request_json(gateway, "/knn", b"{not json")
        assert status == 400
        assert "malformed JSON" in reply["error"]

    def test_non_object_body_400(self, gateway):
        status, _, reply = request_json(gateway, "/knn", b"[1, 2, 3]")
        assert status == 400
        assert "must be an object" in reply["error"]

    def test_missing_queries_400(self, gateway):
        status, _, reply = request_json(gateway, "/knn", {"k": 3})
        assert status == 400
        assert "'queries'" in reply["error"]

    def test_non_numeric_points_400(self, gateway):
        status, _, reply = request_json(
            gateway, "/knn", {"queries": [[["a", "b"]]], "k": 2})
        assert status == 400

    def test_bad_shape_400(self, gateway):
        status, _, reply = request_json(
            gateway, "/knn", {"queries": [[[1, 2, 3]]], "k": 2})
        assert status == 400
        assert "shape" in reply["error"]

    def test_non_finite_points_400(self, gateway):
        status, _, reply = request_json(
            gateway, "/knn", {"queries": [[[1, float("nan")]]], "k": 2})
        assert status == 400
        assert "non-finite" in reply["error"]

    def test_bad_k_400(self, gateway, trajectories):
        for bad_k in (0, "three"):
            status, _, reply = request_json(
                gateway, "/knn",
                {"queries": as_lists(trajectories[:1]), "k": bad_k})
            assert status == 400

    def test_oversized_body_413(self, service, trajectories):
        with SimilarityGateway(service, max_body=256) as gw:
            status, _, reply = request_json(
                gw, "/knn", {"queries": as_lists(trajectories[:8]), "k": 2})
            assert status == 413
            assert "exceeds" in reply["error"]
            # The gateway must stay usable for well-sized requests.
            status, _, _ = request_json(gw, "/healthz")
            assert status == 200

    def test_missing_content_length_411(self, gateway):
        with socket.create_connection(gateway.address, timeout=10) as sock:
            sock.sendall(b"POST /knn HTTP/1.1\r\nHost: t\r\n\r\n")
            reply = sock.recv(4096)
        assert b"411" in reply.split(b"\r\n", 1)[0]

    def test_bad_deadline_header_400(self, gateway, trajectories):
        for bad in ("soon", "-5"):
            status, _, reply = request_json(
                gateway, "/knn",
                {"queries": as_lists(trajectories[:1]), "k": 2},
                headers={"X-Deadline-Ms": bad})
            assert status == 400
            assert "X-Deadline-Ms" in reply["error"]


# ----------------------------------------------------------------------
# Traffic controls
# ----------------------------------------------------------------------
class TestTrafficControls:
    def test_flood_sheds_with_429_and_correct_survivors(self, service,
                                                        trajectories):
        gated = _GatedService(service)
        body = {"queries": as_lists(trajectories[:1]), "k": 3}
        expected_d, expected_i = service.knn(trajectories[0], k=3)
        with SimilarityGateway(gated, max_inflight=1) as gw:
            outcomes = []

            def blocked():
                outcomes.append(request_json(gw, "/knn", body))

            holder = threading.Thread(target=blocked)
            holder.start()
            assert gated.started.wait(timeout=30)
            # The slot is taken: every concurrent request sheds immediately.
            shed = [request_json(gw, "/knn", body) for _ in range(4)]
            gated.gate.set()
            holder.join(timeout=30)
            assert not holder.is_alive()
            for status, headers, reply in shed:
                assert status == 429
                assert "Retry-After" in headers
                assert "overloaded" in reply["error"]
            status, _, reply = outcomes[0]
            assert status == 200
            np.testing.assert_array_equal(np.asarray(reply["ids"]),
                                          expected_i)
            _, _, metrics = request(gw, "/metrics")
        assert b"repro_gateway_shed_total 4" in metrics

    def test_rate_limit_isolates_clients(self, service, trajectories):
        body = {"queries": as_lists(trajectories[:1]), "k": 2}
        with SimilarityGateway(service, rate_limit=0.001, burst=1) as gw:
            status, _, _ = request_json(gw, "/knn", body,
                                        headers={"X-Api-Key": "alice"})
            assert status == 200
            status, headers, reply = request_json(
                gw, "/knn", body, headers={"X-Api-Key": "alice"})
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "rate limit" in reply["error"]
            # A different client still has a full bucket.
            status, _, _ = request_json(gw, "/knn", body,
                                        headers={"X-Api-Key": "bob"})
            assert status == 200
            # GET routes are never rate limited.
            status, _, _ = request_json(gw, "/healthz",
                                        headers={"X-Api-Key": "alice"})
            assert status == 200
            _, _, metrics = request(gw, "/metrics")
        assert b"repro_gateway_ratelimited_total 1" in metrics

    def test_deadline_expiry_direct_service_504(self, service, trajectories):
        slow = _SlowService(service, delay=0.15)
        with SimilarityGateway(slow) as gw:
            status, _, reply = request_json(
                gw, "/knn", {"queries": as_lists(trajectories[:1]), "k": 2},
                headers={"X-Deadline-Ms": "30"})
            assert status == 504
            assert "deadline" in reply["error"]
            _, _, metrics = request(gw, "/metrics")
        assert b"repro_gateway_deadline_expired_total 1" in metrics

    def test_deadline_expiry_through_query_queue_504(self, service,
                                                     trajectories):
        # max_wait far beyond the deadline: the entry expires while queued,
        # so the flush thread drops it without a service call.
        with QueryQueue(service, max_batch=64, max_wait=0.25) as queue:
            with SimilarityGateway(queue) as gw:
                status, _, reply = request_json(
                    gw, "/knn",
                    {"queries": as_lists(trajectories[:1]), "k": 2},
                    headers={"X-Deadline-Ms": "20"})
                assert status == 504
                assert "deadline" in reply["error"]
            assert queue.queue_stats.expired == 1

    def test_generous_deadline_succeeds(self, gateway, service, trajectories):
        status, _, reply = request_json(
            gateway, "/knn", {"queries": as_lists(trajectories[:1]), "k": 2},
            headers={"X-Deadline-Ms": "30000"})
        assert status == 200
        _, expected_i = service.knn(trajectories[0], k=2)
        np.testing.assert_array_equal(np.asarray(reply["ids"]), expected_i)


class TestQueueIntegration:
    def test_knn_parity_through_queue(self, service, trajectories):
        body = {"queries": as_lists(trajectories[:4]), "k": 3, "exclude": 1}
        with QueryQueue(service, max_batch=16, max_wait=0.01) as queue:
            with SimilarityGateway(queue) as gw:
                status, _, reply = request_json(gw, "/knn", body)
                assert status == 200
                stats = request_json(gw, "/stats")[2]
        expected_d, expected_i = service.knn(trajectories[:4], k=3, exclude=1)
        np.testing.assert_array_equal(np.asarray(reply["ids"]), expected_i)
        np.testing.assert_allclose(np.asarray(reply["distances"]), expected_d)
        assert stats["queue"]["queries"] == 4  # fed query by query

    def test_pairwise_and_full_queue_shed(self, service, trajectories):
        gated = _GatedService(service)
        body = {"queries": as_lists(trajectories[:1]), "k": 2}
        with QueryQueue(gated, max_batch=1, max_wait=0.001,
                        max_pending=1) as queue:
            with SimilarityGateway(queue) as gw:
                matrix = request_json(
                    gw, "/pairwise",
                    {"queries": as_lists(trajectories[:2])})[2]
                opener = threading.Thread(
                    target=request_json, args=(gw, "/knn", body))
                opener.start()
                assert gated.started.wait(timeout=30)
                filler = threading.Thread(
                    target=request_json, args=(gw, "/knn", body))
                filler.start()
                deadline = time.monotonic() + 30
                while (queue.pending < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                # Flush thread busy + one pending: the next request hits
                # QueueFullError and the gateway sheds it as 429.
                status, headers, reply = request_json(gw, "/knn", body)
                assert status == 429
                assert "Retry-After" in headers
                assert "full" in reply["error"]
                gated.gate.set()
                opener.join(timeout=30)
                filler.join(timeout=30)
        np.testing.assert_allclose(np.asarray(matrix["distances"]),
                                   service.pairwise(trajectories[:2]))


# ----------------------------------------------------------------------
# Metrics and health
# ----------------------------------------------------------------------
METRIC_LINE = re.compile(
    r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9.+eEInf]+$")


class TestMetrics:
    def test_exposition_format(self, gateway, trajectories):
        request_json(gateway, "/knn",
                     {"queries": as_lists(trajectories[:2]), "k": 3})
        request_json(gateway, "/healthz")
        status, headers, raw = request(gateway, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = raw.decode()
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert METRIC_LINE.match(line), line
        for name in ("repro_gateway_requests_total",
                     "repro_gateway_request_latency_ms_bucket",
                     "repro_gateway_request_latency_ms_count",
                     "repro_gateway_latency_quantile_ms",
                     "repro_gateway_qps",
                     "repro_gateway_inflight",
                     "repro_gateway_shed_total",
                     "repro_gateway_queue_depth",
                     "repro_gateway_cache_hit_rate",
                     "repro_gateway_database_size",
                     "repro_gateway_uptime_seconds"):
            assert name in text, name
        assert 'repro_gateway_requests_total{route="/knn",status="200"} 1' \
            in text
        assert f"repro_gateway_database_size {len(trajectories)}" in text
        assert 'le="+Inf"' in text
        for quantile in ("0.5", "0.95", "0.99"):
            assert (f'repro_gateway_latency_quantile_ms{{route="/knn",'
                    f'quantile="{quantile}"}}') in text

    def test_histogram_buckets_are_cumulative(self, gateway, trajectories):
        for _ in range(5):
            request_json(gateway, "/knn",
                         {"queries": as_lists(trajectories[:1]), "k": 2})
        text = request(gateway, "/metrics")[2].decode()
        buckets = [int(line.rsplit(" ", 1)[1])
                   for line in text.splitlines()
                   if line.startswith(
                       'repro_gateway_request_latency_ms_bucket'
                       '{route="/knn"')]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 5  # +Inf bucket counts everything

    def test_queue_metrics_surface(self, service, trajectories):
        with QueryQueue(service, max_wait=0.01) as queue:
            with SimilarityGateway(queue) as gw:
                request_json(gw, "/knn",
                             {"queries": as_lists(trajectories[:1]), "k": 2})
                text = request(gw, "/metrics")[2].decode()
        assert "repro_gateway_queue_depth 0" in text
        assert "repro_gateway_queue_rejected_total 0" in text
        assert "repro_gateway_queue_expired_total 0" in text

    def test_healthz_degraded_503_and_shard_up(self):
        class DegradedService:
            def stats(self):
                return {"size": 40, "degraded": [1],
                        "shards": [{"shard": 0, "size": 20},
                                   {"shard": 1, "size": 20}]}

        with SimilarityGateway(DegradedService()) as gw:
            status, _, reply = request_json(gw, "/healthz")
            assert status == 503
            assert reply["status"] == "degraded"
            assert reply["degraded"] == [1]
            text = request(gw, "/metrics")[2].decode()
        assert 'repro_gateway_shard_up{shard="0"} 1' in text
        assert 'repro_gateway_shard_up{shard="1"} 0' in text

    def test_healthz_replica_health_and_shard_replicas_metric(self):
        """A replicated cluster's stats surface per-shard replica rows in
        /healthz and a healthy-replica gauge in /metrics; an
        under-replicated (but fully served) cluster stays 200."""

        class ReplicatedService:
            def stats(self):
                return {
                    "size": 40, "degraded": [], "replication": 2,
                    "underreplicated": [1],
                    "shards": [
                        {"shard": 0, "size": 20, "alive": True,
                         "healthy_replicas": 2, "replicas": []},
                        {"shard": 1, "size": 20, "alive": True,
                         "healthy_replicas": 1, "replicas": []},
                    ],
                }

        with SimilarityGateway(ReplicatedService()) as gw:
            status, _, reply = request_json(gw, "/healthz")
            assert status == 200
            assert reply["status"] == "underreplicated"
            assert reply["replication"] == 2
            assert reply["underreplicated"] == [1]
            assert reply["shards"] == [
                {"shard": 0, "healthy_replicas": 2, "alive": True},
                {"shard": 1, "healthy_replicas": 1, "alive": True}]
            text = request(gw, "/metrics")[2].decode()
        assert 'repro_gateway_shard_replicas{shard="0"} 2' in text
        assert 'repro_gateway_shard_replicas{shard="1"} 1' in text

    def test_shard_lost_maps_to_503(self, trajectories):
        from repro.api import ShardLostError

        class LostShardService:
            def stats(self):
                return {"size": 0, "degraded": [0]}

            def knn(self, queries, k, exclude=None, dedupe_eps=None):
                raise ShardLostError("shard 0 has no healthy replica")

        with SimilarityGateway(LostShardService()) as gw:
            status, headers, reply = request_json(
                gw, "/knn", {"queries": as_lists(trajectories[:1]), "k": 2})
        assert status == 503
        assert "no healthy replica" in reply["error"]
        assert headers.get("Retry-After") == "1"


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_max_requests_trips_shutdown(self, service, trajectories):
        gw = SimilarityGateway(service, max_requests=2)
        try:
            request_json(gw, "/healthz")
            request_json(gw, "/healthz")
            start = time.monotonic()
            gw.serve_forever(poll_interval=0.01)
            assert time.monotonic() - start < 10
            assert gw.closed
        finally:
            gw.close()

    def test_shutdown_refuses_new_requests(self, service):
        with SimilarityGateway(service) as gw:
            gw.shutdown()
            status, _, reply = request_json(gw, "/healthz")
            assert status == 503
            assert reply["status"] == "stopping"

    def test_close_is_idempotent(self, service):
        gw = SimilarityGateway(service)
        gw.close()
        gw.close()
        assert "closed" in repr(gw)


# ----------------------------------------------------------------------
# Traffic-control primitives in isolation
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_token_bucket_refills(self):
        limiter = TokenBucketLimiter(rate=10, burst=2)
        assert limiter.allow("a", now=0.0) == (True, 0.0)
        assert limiter.allow("a", now=0.0) == (True, 0.0)
        admitted, retry_after = limiter.allow("a", now=0.0)
        assert not admitted
        assert retry_after == pytest.approx(0.1)
        # Refill at 10/s: one token back after 0.1s.
        assert limiter.allow("a", now=0.11)[0]
        # Other keys are untouched by "a"'s spend.
        assert limiter.allow("b", now=0.11)[0]

    def test_token_bucket_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucketLimiter(rate=0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucketLimiter(rate=1, burst=0.2)

    def test_admission_controller(self):
        admission = AdmissionController(max_inflight=2)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()
        admission.release()
        assert admission.inflight == 1
        assert admission.try_acquire()
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(0)

    def test_latency_histogram_percentiles(self):
        histogram = LatencyHistogram(bounds=(1.0, 10.0, 100.0))
        assert histogram.percentile(0.5) is None
        for value in (0.5, 5.0, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(60.5)
        p50 = histogram.percentile(0.5)
        assert 1.0 <= p50 <= 10.0
        assert histogram.percentile(1.0) == pytest.approx(100.0)
        histogram.observe(1e9)  # beyond the last bound: clamps, not crashes
        assert histogram.percentile(0.999) == pytest.approx(100.0)
