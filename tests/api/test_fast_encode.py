"""End-to-end tests for the fast encode path through the similarity API:
kNN parity with the fast engine on/off, dtype preservation in the
embedding cache, and snapshot round-trips of the encode preferences."""

import numpy as np
import pytest

from repro.api import SimilarityService, get_backend
from repro.api.backends import backend_state, restore_backend

from .test_registry import make_trajectories


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=24, seed=5)


@pytest.fixture(scope="module")
def trained_model(trajectories):
    backend = get_backend("trajcl", trajectories=trajectories, dim=8,
                          max_len=16, epochs=1, seed=0)
    return backend.model


def service_with(model, trajectories, fast, dtype, index=None):
    backend = get_backend("trajcl", model=model, fast_encode=fast,
                          encode_dtype=dtype)
    return SimilarityService(backend=backend, index=index).add(trajectories)


class TestKnnParity:
    @pytest.mark.parametrize("index", ["bruteforce"])
    def test_float64_fast_knn_identical(self, trained_model, trajectories,
                                        index):
        reference = service_with(trained_model, trajectories, fast=False,
                                 dtype="float64", index=index)
        fast = service_with(trained_model, trajectories, fast=True,
                            dtype="float64", index=index)
        ref_d, ref_i = reference.knn(trajectories[:6], k=5, exclude=2)
        fast_d, fast_i = fast.knn(trajectories[:6], k=5, exclude=2)
        np.testing.assert_array_equal(fast_i, ref_i)
        np.testing.assert_allclose(fast_d, ref_d, rtol=1e-9, atol=1e-9)

    def test_float32_fast_knn_same_neighbours(self, trained_model,
                                              trajectories):
        reference = service_with(trained_model, trajectories, fast=False,
                                 dtype="float64")
        fast = service_with(trained_model, trajectories, fast=True,
                            dtype="float32")
        ref_d, ref_i = reference.knn(trajectories[:6], k=5)
        fast_d, fast_i = fast.knn(trajectories[:6], k=5)
        np.testing.assert_array_equal(fast_i, ref_i)
        np.testing.assert_allclose(fast_d, ref_d, rtol=1e-3, atol=1e-3)

    def test_pairwise_parity(self, trained_model, trajectories):
        reference = service_with(trained_model, trajectories, fast=False,
                                 dtype="float64")
        fast = service_with(trained_model, trajectories, fast=True,
                            dtype="float64")
        np.testing.assert_allclose(
            fast.pairwise(trajectories[:4]),
            reference.pairwise(trajectories[:4]),
            rtol=1e-9, atol=1e-9,
        )


class TestDtypePreservation:
    def test_float32_backend_cached_as_float32(self, trajectories):
        class Float32Encoder:
            output_dim = 4

            def encode(self, batch):
                return np.array(
                    [[len(t), t[0, 0], t[-1, 1], 1.0] for t in batch],
                    dtype=np.float32,
                )

        service = SimilarityService(backend=Float32Encoder(),
                                    cache_size=64).add(trajectories)
        vectors = service.encode_batch(trajectories[:4])
        assert vectors.dtype == np.float32
        assert all(v.dtype == np.float32 for v in service._cache.values())

    def test_float32_cache_halves_memory(self, trajectories):
        class Encoder:
            output_dim = 8

            def __init__(self, dtype):
                self.dtype = dtype

            def encode(self, batch):
                return np.ones((len(batch), 8), dtype=self.dtype)

        f32 = SimilarityService(backend=Encoder(np.float32)).add(trajectories)
        f64 = SimilarityService(backend=Encoder(np.float64)).add(trajectories)
        f32.encode_batch(trajectories)
        f64.encode_batch(trajectories)
        bytes32 = sum(v.nbytes for v in f32._cache.values())
        bytes64 = sum(v.nbytes for v in f64._cache.values())
        assert bytes32 * 2 == bytes64

    def test_non_float_encoders_upcast(self, trajectories):
        class IntEncoder:
            output_dim = 2

            def encode(self, batch):
                return np.array([[len(t), 1] for t in batch], dtype=np.int64)

        service = SimilarityService(backend=IntEncoder()).add(trajectories[:4])
        vectors = service.encode_batch(trajectories[:4])
        assert vectors.dtype == np.float64

    def test_trajcl_float32_service_embeddings(self, trained_model,
                                               trajectories):
        service = service_with(trained_model, trajectories, fast=True,
                               dtype="float32")
        assert service.encode_batch(trajectories[:3]).dtype == np.float32


class TestEncodePreferencePersistence:
    def test_backend_state_roundtrip(self, trained_model):
        backend = get_backend("trajcl", model=trained_model,
                              fast_encode=False, encode_dtype="float32")
        meta, arrays = backend_state(backend)
        assert meta["encode"] == {"fast": False, "dtype": "float32"}
        restored = restore_backend(meta, arrays)
        assert restored.model.encode_fast is False
        assert restored.model.encode_dtype == "float32"

    def test_wrapping_a_model_keeps_its_preferences(self, trained_model):
        """get_backend('trajcl', model=...) without encode kwargs must not
        clobber preferences already set on the caller's model."""
        trained_model.encode_fast = False
        trained_model.encode_dtype = "float32"
        try:
            get_backend("trajcl", model=trained_model)
            assert trained_model.encode_fast is False
            assert trained_model.encode_dtype == "float32"
            get_backend("trajcl", model=trained_model, fast_encode=True)
            assert trained_model.encode_fast is True
            assert trained_model.encode_dtype == "float32"  # untouched
        finally:
            trained_model.encode_fast = True
            trained_model.encode_dtype = "float64"

    def test_service_snapshot_keeps_preferences(self, trained_model,
                                                trajectories, tmp_path):
        service = service_with(trained_model, trajectories, fast=True,
                               dtype="float32")
        path = str(tmp_path / "svc.npz")
        service.save(path)
        restored = SimilarityService.load(path)
        assert restored.backend.model.encode_fast is True
        assert restored.backend.model.encode_dtype == "float32"
        before = service.knn(trajectories[1], k=3)
        after = restored.knn(trajectories[1], k=3)
        np.testing.assert_array_equal(before[1], after[1])
        np.testing.assert_allclose(before[0], after[0], rtol=1e-6, atol=1e-6)
