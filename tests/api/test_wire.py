"""Tests for the typed binary wire codec: round-trips over the full tag
vocabulary, malformed-payload rejection (never a truncated
``np.frombuffer``), the shared-memory pool lifecycle, and the version
sniff that lets binary and pickle peers interoperate."""

import os

import numpy as np
import pytest

from repro.api import wire
from repro.api.transport import (
    FrameError,
    decode_payload,
    encode_payload,
)
from repro.api.wire import ShmPool, WireError


def round_trip(message, pool=None):
    return wire.decode(wire.encode(message, pool))


class TestScalarRoundTrips:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**62, -(2**62), 3.5, -0.0,
        float("inf"), "", "text", "snowman ☃", b"", b"raw bytes",
    ])
    def test_plain_values(self, value):
        result = round_trip(value)
        assert result == value
        assert type(result) is type(value)

    def test_nan(self):
        result = round_trip(float("nan"))
        assert isinstance(result, float) and result != result

    @pytest.mark.parametrize("value", [2**80, -(2**80), 2**63, -(2**63) - 1])
    def test_bigints_beyond_i64(self, value):
        assert round_trip(value) == value

    @pytest.mark.parametrize("scalar", [
        np.float64(1.25), np.float32(-2.5), np.int64(-7), np.int32(9),
        np.uint8(255), np.bool_(True),
    ])
    def test_numpy_scalars_keep_their_type(self, scalar):
        result = round_trip(scalar)
        assert type(result) is type(scalar)
        assert result == scalar


class TestArrayRoundTrips:
    @pytest.mark.parametrize("dtype", [
        np.float32, np.float64, np.int64, np.int32, np.uint8, np.bool_,
    ])
    def test_dtype_matrix(self, dtype):
        array = np.arange(12).reshape(3, 4).astype(dtype)
        result = round_trip({"a": array})["a"]
        assert result.dtype == array.dtype
        assert result.shape == array.shape
        np.testing.assert_array_equal(result, array)

    def test_zero_d_array(self):
        array = np.array(3.25)
        result = round_trip(array)
        assert result.shape == ()
        assert result.dtype == array.dtype
        assert float(result) == 3.25

    def test_empty_array(self):
        array = np.empty((0, 5), dtype=np.float64)
        result = round_trip(array)
        assert result.shape == (0, 5)
        assert result.dtype == np.float64

    def test_non_contiguous_slice(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        view = base[::2, ::3]
        assert not view.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(round_trip(view), view)

    def test_fortran_order(self):
        array = np.asfortranarray(np.arange(12, dtype=np.int64).reshape(3, 4))
        assert array.flags["F_CONTIGUOUS"]
        result = round_trip(array)
        np.testing.assert_array_equal(result, array)

    def test_non_native_endian(self):
        array = np.arange(5, dtype=">f8")
        result = round_trip(array)
        assert result.dtype == np.dtype(">f8")
        np.testing.assert_array_equal(result, array)

    def test_nested_dicts_of_arrays(self):
        message = {
            "distances": np.random.default_rng(0).normal(size=(3, 7)),
            "meta": {"ids": np.arange(7, dtype=np.int64),
                     "nested": [{"x": np.ones(2, dtype=np.float32)}]},
        }
        result = round_trip(message)
        np.testing.assert_array_equal(result["distances"],
                                      message["distances"])
        np.testing.assert_array_equal(result["meta"]["ids"],
                                      message["meta"]["ids"])
        np.testing.assert_array_equal(result["meta"]["nested"][0]["x"],
                                      message["meta"]["nested"][0]["x"])

    def test_containers_keep_their_types(self):
        message = ("cmd", [1, 2], {"k": (3, 4)})
        result = round_trip(message)
        assert result == message
        assert type(result) is tuple
        assert type(result[1]) is list
        assert type(result[2]["k"]) is tuple


class TestFallback:
    def test_sets_travel_via_pickle_tag(self):
        payload = wire.encode({"tags": {"a", "b"}})
        assert wire._TAG_PICKLE in payload
        assert round_trip({"tags": {"a", "b"}}) == {"tags": {"a", "b"}}

    def test_object_dtype_array_falls_back(self):
        array = np.array([{"odd": 1}, None], dtype=object)
        result = round_trip(array)
        assert result.dtype == object
        assert result[0] == {"odd": 1} and result[1] is None

    def test_structured_dtype_falls_back(self):
        array = np.zeros(3, dtype=[("x", "f8"), ("y", "i4")])
        result = round_trip(array)
        assert result.dtype == array.dtype


class TestMalformedPayloads:
    def test_wrong_version_byte(self):
        with pytest.raises(WireError, match="version"):
            wire.decode(b"\x7f" + wire.encode(1)[1:])

    def test_unknown_tag(self):
        with pytest.raises(WireError, match="unknown wire tag"):
            wire.decode(bytes([wire.WIRE_VERSION]) + b"Z")

    def test_truncated_scalar(self):
        payload = wire.encode(1.5)
        with pytest.raises(WireError, match="truncated"):
            wire.decode(payload[:-3])

    def test_truncated_array_body_never_reaches_frombuffer(self):
        payload = wire.encode(np.arange(100, dtype=np.float64))
        with pytest.raises(WireError, match="truncated"):
            wire.decode(payload[:-8])

    def test_array_length_mismatch(self):
        # Corrupt the declared nbytes of an array payload: header says
        # one thing, shape*itemsize another.
        array = np.arange(4, dtype=np.float64)
        payload = bytearray(wire.encode(array))
        # layout: version, 'a', u8 len, dtype str, u8 ndim, u64 shape, u64 nbytes
        offset = 1 + 1 + 1 + len(array.dtype.str) + 1 + 8
        payload[offset:offset + 8] = (999).to_bytes(8, "big")
        with pytest.raises(WireError, match="does not match shape"):
            wire.decode(bytes(payload))

    def test_bad_dtype_string(self):
        array = np.arange(2, dtype=np.float64)
        payload = bytearray(wire.encode(array))
        payload[3:3 + len(array.dtype.str)] = b"?" * len(array.dtype.str)
        with pytest.raises(WireError, match="dtype"):
            wire.decode(bytes(payload))

    def test_trailing_bytes_are_rejected(self):
        with pytest.raises(WireError, match="trailing"):
            wire.decode(wire.encode(42) + b"junk")

    def test_implausible_rank(self):
        payload = bytearray(wire.encode(np.arange(2.0)))
        dtype_len = len(np.dtype(np.float64).str)
        payload[1 + 1 + 1 + dtype_len] = 200  # ndim byte
        with pytest.raises(WireError, match="rank"):
            wire.decode(bytes(payload))


class TestVersionSniffing:
    """decode_payload negotiates codec per-payload off the first byte."""

    def test_binary_payload_decodes(self):
        message = {"x": np.arange(3)}
        result = decode_payload(encode_payload(message, "binary"))
        np.testing.assert_array_equal(result["x"], message["x"])

    def test_pickle_payload_decodes(self):
        message = {"x": np.arange(3)}
        payload = encode_payload(message, "pickle")
        assert payload[0] == 0x80  # pickle PROTO opcode, not WIRE_VERSION
        result = decode_payload(payload)
        np.testing.assert_array_equal(result["x"], message["x"])

    def test_formats_agree_bit_for_bit(self):
        message = ("knn", {"queries": np.random.default_rng(1).normal(
            size=(4, 3)), "k": 2})
        binary = decode_payload(encode_payload(message, "binary"))
        legacy = decode_payload(encode_payload(message, "pickle"))
        assert binary[0] == legacy[0]
        assert binary[1]["queries"].tobytes() == \
            legacy[1]["queries"].tobytes()

    def test_empty_payload_is_a_frame_error(self):
        with pytest.raises(FrameError, match="empty"):
            decode_payload(b"")

    def test_malformed_binary_payload_is_a_frame_error(self):
        payload = encode_payload(np.arange(50), "binary")
        with pytest.raises(FrameError, match="does not decode"):
            decode_payload(payload[:-5])

    def test_unknown_wire_format_is_rejected(self):
        with pytest.raises(ValueError, match="unknown wire_format"):
            encode_payload({}, "msgpack")


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no POSIX shared memory filesystem")
class TestShmPool:
    def test_large_array_rides_shared_memory(self):
        pool = ShmPool(threshold=1024)
        try:
            array = np.random.default_rng(2).normal(size=(64, 8))
            assert pool.wants(array)
            payload = wire.encode({"big": array, "small": np.arange(3)},
                                  pool)
            assert pool.hits == 1
            assert pool.bytes_shared == array.nbytes
            # The big buffer is out-of-band: the payload holds a name,
            # not the 4 KiB of data.
            assert len(payload) < array.nbytes
            result = wire.decode(payload)
            np.testing.assert_array_equal(result["big"], array)
            np.testing.assert_array_equal(result["small"], np.arange(3))
            del result
        finally:
            pool.release()

    def test_below_threshold_stays_inline(self):
        pool = ShmPool(threshold=1 << 20)
        try:
            array = np.arange(16, dtype=np.float64)
            payload = wire.encode(array, pool)
            assert pool.hits == 0
            np.testing.assert_array_equal(wire.decode(payload), array)
        finally:
            pool.release()

    def test_release_unlinks_segments(self):
        pool = ShmPool(threshold=1)
        array = np.arange(32, dtype=np.float64)
        payload = wire.encode(array, pool)
        names = [seg.name for seg in pool._segments]
        assert names and all(
            os.path.exists(f"/dev/shm/{name}") for name in names)
        result = wire.decode(payload)
        np.testing.assert_array_equal(result, array)
        del result
        pool.release()
        assert all(not os.path.exists(f"/dev/shm/{name}") for name in names)

    def test_decoded_view_survives_unlink(self):
        # POSIX semantics: the receiver's mapping outlives the unlink.
        pool = ShmPool(threshold=1)
        array = np.random.default_rng(3).normal(size=(128,))
        payload = wire.encode(array, pool)
        result = wire.decode(payload)
        pool.release()  # segment unlinked while the view is alive
        np.testing.assert_array_equal(result, array)

    def test_missing_segment_is_a_wire_error(self):
        pool = ShmPool(threshold=1)
        payload = wire.encode(np.arange(16, dtype=np.float64), pool)
        pool.release()  # unlink before the receiver attaches
        with pytest.raises(WireError, match="unavailable"):
            wire.decode(payload)

    def test_segment_names_carry_the_prefix(self):
        pool = ShmPool(threshold=1)
        try:
            name = pool.store(np.arange(4, dtype=np.float64))
            assert name.startswith(wire.SHM_NAME_PREFIX)
        finally:
            pool.release()
