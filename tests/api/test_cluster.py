"""Tests for the cluster subsystem: coordinator parity with a single
service, the join handshake, heartbeat/failover (a killed worker degrades
its shard and the survivors keep answering), add-requeue, sharded
snapshots restored onto a different worker count, and composition with
the serving front-ends."""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.api import (
    ClusterCoordinator,
    KnnService,
    QueryQueue,
    RemoteCallError,
    RemoteSimilarityClient,
    ShardWorker,
    SimilarityServer,
    SimilarityService,
    get_backend,
)
from repro.api.transport import SocketTransport, request

from .test_registry import make_trajectories


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=18, seed=11)


@pytest.fixture(scope="module")
def single_service(trajectories):
    return SimilarityService(backend="hausdorff").add(trajectories)


@pytest.fixture()
def workers():
    pair = [ShardWorker(), ShardWorker()]
    yield pair
    for worker in pair:
        worker.close()


def make_cluster(workers, **kwargs):
    kwargs.setdefault("backend", "hausdorff")
    kwargs.setdefault("heartbeat_interval", 0)  # tests ping explicitly
    return ClusterCoordinator([w.address for w in workers], **kwargs)


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestCoordinatorParity:
    def test_knn_bit_identical_to_single_service(self, workers,
                                                 single_service,
                                                 trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            assert len(cluster) == len(trajectories)
            local_d, local_i = single_service.knn(trajectories[:5], k=4,
                                                  exclude=2)
            cluster_d, cluster_i = cluster.knn(trajectories[:5], k=4,
                                               exclude=2)
        assert local_d.tobytes() == cluster_d.tobytes()
        assert local_i.tobytes() == cluster_i.tobytes()

    def test_knn_with_dedupe(self, workers, single_service, trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            local = single_service.knn(trajectories[0], k=3, dedupe_eps=1e-9)
            remote = cluster.knn(trajectories[0], k=3, dedupe_eps=1e-9)
        np.testing.assert_array_equal(local[1], remote[1])
        np.testing.assert_array_equal(local[0], remote[0])

    def test_incremental_add_keeps_parity(self, workers, single_service,
                                          trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories[:7]).add(trajectories[7:])
            local = single_service.knn(trajectories[:4], k=5)
            merged = cluster.knn(trajectories[:4], k=5)
        assert local[0].tobytes() == merged[0].tobytes()
        assert local[1].tobytes() == merged[1].tobytes()

    def test_pairwise_parity(self, workers, single_service, trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            np.testing.assert_allclose(
                cluster.pairwise(trajectories[:3]),
                single_service.pairwise(trajectories[:3]))
            np.testing.assert_allclose(
                cluster.pairwise(trajectories[:2], trajectories[3:6]),
                single_service.pairwise(trajectories[:2], trajectories[3:6]))

    def test_satisfies_knn_service_protocol(self, workers):
        with make_cluster(workers) as cluster:
            assert isinstance(cluster, KnnService)

    def test_trajcl_backend_ships_over_the_wire(self, workers, trajectories):
        backend = get_backend("trajcl", trajectories=trajectories, dim=8,
                              max_len=16, epochs=1, seed=3)
        local = SimilarityService(backend=backend).add(trajectories)
        with make_cluster(workers, backend=backend) as cluster:
            cluster.add(trajectories)
            local_d, local_i = local.knn(trajectories[:4], k=5, exclude=1)
            got_d, got_i = cluster.knn(trajectories[:4], k=5, exclude=1)
        # Same convention as the sharded-service trajcl parity tests:
        # identical neighbours, distances to float tolerance (BLAS kernels
        # vary with the encode batch shape).
        np.testing.assert_array_equal(local_i, got_i)
        np.testing.assert_allclose(local_d, got_d)

    def test_stats_common_shape(self, workers, trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            stats = cluster.stats()
        for key in ("type", "backend", "index", "size", "cache", "shards",
                    "degraded", "workers", "alive_workers"):
            assert key in stats
        assert stats["workers"] == 2
        assert stats["alive_workers"] == 2
        assert stats["degraded"] == []
        assert stats["size"] == len(trajectories)
        assert sum(entry["size"] for entry in stats["shards"]) == \
            len(trajectories)

    @pytest.mark.parametrize("wire_format", ["binary", "pickle"])
    def test_wire_format_parity_and_stats(self, single_service, trajectories,
                                          wire_format):
        pair = [ShardWorker(wire_format=wire_format) for _ in range(2)]
        try:
            with make_cluster(pair, wire_format=wire_format) as cluster:
                cluster.add(trajectories)
                local_d, local_i = single_service.knn(trajectories[:4], k=3)
                got_d, got_i = cluster.knn(trajectories[:4], k=3)
                stats = cluster.stats()
        finally:
            for worker in pair:
                worker.close()
        assert local_d.tobytes() == got_d.tobytes()
        assert local_i.tobytes() == got_i.tobytes()
        assert stats["wire_format"] == wire_format
        transport = stats["transport"]
        assert transport["frames_sent"] > 0
        assert transport["bytes_sent"] > 0
        assert transport["wire_format"] == wire_format


class TestFailover:
    def test_killed_worker_degrades_and_survivors_answer(
            self, workers, single_service, trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            surviving = np.asarray(cluster._shard_ids[1], dtype=np.int64)
            workers[0].close()  # abrupt: sockets drop mid-conversation
            distances, ids = cluster.knn(trajectories[:4], k=3)
            stats = cluster.stats()
        assert stats["degraded"] == [0]
        assert stats["alive_workers"] == 1
        dead = [entry for entry in stats["shards"] if not entry["alive"]]
        assert len(dead) == 1 and dead[0]["reason"]
        # Survivor-only answer == the single service restricted to the
        # surviving shard's ids (same distance-then-id ordering).
        full = single_service.pairwise(trajectories[:4])
        for row in range(4):
            row_d = full[row, surviving]
            order = np.lexsort((surviving, row_d))[:3]
            np.testing.assert_array_equal(ids[row], surviving[order])
            np.testing.assert_allclose(distances[row], row_d[order])

    def test_heartbeat_marks_dead_worker_without_a_query(self, workers,
                                                         trajectories):
        with make_cluster(workers, heartbeat_interval=0.1,
                          heartbeat_timeout=2.0) as cluster:
            cluster.add(trajectories)
            workers[1].close()
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline and not cluster.degraded_shards:
                time.sleep(0.05)
            assert cluster.degraded_shards == [1]

    def test_add_requeues_onto_survivors(self, workers, trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories[:8])
            workers[0].close()
            cluster.add(trajectories[8:12])
            assert len(cluster) == 12
            # Every requeued id landed on the surviving shard.
            assert set(cluster._shard_ids[1]) >= {8, 9, 10, 11}
            distances, ids = cluster.knn(trajectories[10], k=1)
            assert ids[0, 0] == 10
            assert distances[0, 0] == 0.0

    def test_all_workers_dead_raises(self, workers, trajectories):
        cluster = make_cluster(workers)
        try:
            cluster.add(trajectories[:4])
            workers[0].close()
            workers[1].close()
            with pytest.raises(RuntimeError, match="workers"):
                cluster.knn(trajectories[0], k=1)
        finally:
            cluster.close()


class TestSnapshots:
    def test_save_load_across_worker_counts(self, tmp_path, trajectories,
                                            single_service):
        snapshot = str(tmp_path / "cluster")
        two = [ShardWorker(), ShardWorker()]
        three = [ShardWorker() for _ in range(3)]
        try:
            with ClusterCoordinator([w.address for w in two],
                                    backend="hausdorff",
                                    heartbeat_interval=0) as cluster:
                cluster.add(trajectories)
                expected = cluster.knn(trajectories[:4], k=5, exclude=1)
                cluster.save(snapshot)
            manifest = json.loads(
                (tmp_path / "cluster" / "manifest.json").read_text())
            assert manifest["shards"] == 2
            assert manifest["size"] == len(trajectories)
            assert manifest["format_version"] == 1
            assert len(manifest["shard_files"]) == 2
            restored = ClusterCoordinator.load(
                snapshot, [w.address for w in three], heartbeat_interval=0)
            try:
                assert len(restored) == len(trajectories)
                assert restored.stats()["workers"] == 3
                got = restored.knn(trajectories[:4], k=5, exclude=1)
                # Bit-identical across the 2 -> 3 worker reassignment, and
                # to the unsharded service.
                assert expected[0].tobytes() == got[0].tobytes()
                assert expected[1].tobytes() == got[1].tobytes()
                single = single_service.knn(trajectories[:4], k=5, exclude=1)
                assert single[0].tobytes() == got[0].tobytes()
                assert single[1].tobytes() == got[1].tobytes()
            finally:
                restored.close()
        finally:
            for worker in two + three:
                worker.close()

    def test_save_refuses_a_degraded_cluster(self, workers, trajectories,
                                             tmp_path):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            workers[0].close()
            cluster.knn(trajectories[0], k=1)  # notice the death
            with pytest.raises(RuntimeError, match="degraded"):
                cluster.save(str(tmp_path / "snap"))


class TestWorkerProtocol:
    def test_worker_requires_join(self, workers, trajectories):
        transport = SocketTransport.connect(*workers[0].address)
        try:
            with pytest.raises(RemoteCallError, match="join"):
                request(transport, "knn", ([0], ([trajectories[0]], 1)))
            # ping and len answer without a shard; the connection survived
            # the error above.
            assert request(transport, "ping")["joined"] is False
            assert request(transport, "len") == 0
        finally:
            transport.close()

    def test_leave_drops_the_shard(self, workers, trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
        # close() sent "leave": a fresh connection sees no shard.
        transport = SocketTransport.connect(*workers[0].address)
        try:
            assert request(transport, "ping")["joined"] is False
        finally:
            transport.close()

    def test_ping_answers_while_the_shard_is_busy(self, workers):
        """Heartbeats are lock-free on the worker: a long add/knn holding
        the shard lock must not read as a dead worker."""
        worker = workers[0]
        transport = SocketTransport.connect(*worker.address)
        try:
            with worker._lock:  # simulate a long request owning the shard
                assert request(transport, "ping")["joined"] is False
        finally:
            transport.close()

    def test_join_retries_until_worker_boots(self):
        port = free_port()
        box = {}

        def boot():
            time.sleep(0.5)
            box["worker"] = ShardWorker(port=port)

        thread = threading.Thread(target=boot)
        thread.start()
        try:
            with ClusterCoordinator([("127.0.0.1", port)], backend="frechet",
                                    heartbeat_interval=0,
                                    connect_retries=20,
                                    retry_wait=0.1) as cluster:
                assert len(cluster) == 0
                assert cluster.stats()["alive_workers"] == 1
        finally:
            thread.join(timeout=10)
            if "worker" in box:
                box["worker"].close()


class TestComposition:
    def test_cluster_behind_queue_and_server(self, workers, single_service,
                                             trajectories):
        """The coordinator is a KnnService: QueryQueue, SimilarityServer
        and RemoteSimilarityClient stack on it unchanged."""
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            with QueryQueue(cluster, max_batch=8, max_wait=0.01) as queue:
                with SimilarityServer(queue) as server:
                    with RemoteSimilarityClient(*server.address) as client:
                        remote_d, remote_i = client.knn(trajectories[:4], k=5)
                        stats = client.stats()
        local_d, local_i = single_service.knn(trajectories[:4], k=5)
        assert local_d.tobytes() == remote_d.tobytes()
        assert local_i.tobytes() == remote_i.tobytes()
        # Unified stats flow through queue and server unchanged.
        assert stats["backend"] == "hausdorff"
        assert stats["size"] == len(trajectories)
        assert stats["requests"] >= 1

    def test_stats_probe_does_not_desync_in_flight_queries(
            self, workers, single_service, trajectories):
        """stats() gathers per-worker reports over the same transports the
        query path uses; the internal RPC lock must keep a concurrent
        monitoring probe from interleaving frames with a kNN exchange."""
        with make_cluster(workers) as cluster:
            cluster.add(trajectories)
            expected = single_service.knn(trajectories[:2], k=3)
            errors = []
            stop = threading.Event()

            def probe():
                try:
                    while not stop.is_set():
                        assert cluster.stats()["size"] == len(trajectories)
                except Exception as error:  # surfaced below
                    errors.append(error)

            thread = threading.Thread(target=probe)
            thread.start()
            try:
                for _ in range(50):
                    got = cluster.knn(trajectories[:2], k=3)
                    assert got[0].tobytes() == expected[0].tobytes()
                    assert got[1].tobytes() == expected[1].tobytes()
            finally:
                stop.set()
                thread.join(timeout=30)
            assert not errors


class TestStatsLockScope:
    """Regression tests for the unlocked _size commit that `repro lint`
    (C202) flagged: the coordinator's add() bumped _size outside the RPC
    lock that guards the _shard_ids commits, so a concurrent stats()
    could see the extends without the size bump (or a torn pair)."""

    def test_stats_bookkeeping_is_atomic_during_adds(self, workers,
                                                     trajectories):
        with make_cluster(workers) as cluster:
            cluster.add(trajectories[:2])
            errors = []
            stop = threading.Event()

            def probe():
                try:
                    while not stop.is_set():
                        stats = cluster.stats()
                        assert sum(stats["shard_sizes"]) == stats["size"], \
                            (stats["shard_sizes"], stats["size"])
                except Exception as error:  # surfaced below
                    errors.append(error)

            thread = threading.Thread(target=probe, daemon=True)
            thread.start()
            try:
                for i in range(20):
                    cluster.add([trajectories[i % len(trajectories)]])
            finally:
                stop.set()
                thread.join(timeout=30)
            assert not errors, errors
            final = cluster.stats()
            assert final["size"] == 2 + 20
            assert sum(final["shard_sizes"]) == final["size"]


# ----------------------------------------------------------------------
# Replication + recovery (PR 9)
# ----------------------------------------------------------------------
@pytest.fixture()
def trio():
    three = [ShardWorker() for _ in range(3)]
    yield three
    for worker in three:
        worker.close()


class TestReplication:
    def test_replication_parity_and_kill_mid_traffic(self, trio,
                                                     single_service,
                                                     trajectories):
        """The headline: replication=2, a worker killed mid-traffic, and
        every query (before, during, after the death) answers bit-exact —
        zero failed queries, zero shrunken answers."""
        with make_cluster(trio, replication=2) as cluster:
            cluster.add(trajectories)
            expected = single_service.knn(trajectories[:4], k=5, exclude=1)
            failures = 0
            for round_number in range(12):
                if round_number == 5:
                    trio[1].close()  # abrupt, mid-traffic
                try:
                    got = cluster.knn(trajectories[:4], k=5, exclude=1)
                except Exception:
                    failures += 1
                    continue
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
            assert failures == 0
            stats = cluster.stats()
        assert stats["alive_workers"] == 2
        assert stats["degraded"] == []  # every shard still has a replica
        assert set(stats["underreplicated"]) == {0, 1}

    def test_write_all_replicas_hold_identical_shards(self, trio,
                                                      trajectories):
        with make_cluster(trio, replication=2) as cluster:
            cluster.add(trajectories)
            stats = cluster.stats()
            assert stats["replication"] == 2
            # Each worker hosts two of the three logical shards, and the
            # per-worker totals cover every shard twice.
            hosted = sum(len(entry["shards"])
                         for entry in stats["worker_links"])
            assert hosted == 2 * 3
            for entry in stats["shards"]:
                assert entry["healthy_replicas"] == 2
                assert len(entry["replicas"]) == 2

    def test_degraded_add_logs_catchup_and_rejoin_replays(
            self, trio, single_service, trajectories):
        with make_cluster(trio, replication=2) as cluster:
            cluster.add(trajectories[:12])
            trio[2].close()
            cluster.knn(trajectories[0], k=1)  # notice the death
            cluster.add(trajectories[12:])    # committed on survivors
            stats = cluster.stats()
            dead = [entry for entry in stats["worker_links"]
                    if not entry["alive"]]
            assert len(dead) == 1 and dead[0]["catchup"] >= 0
            replacement = ShardWorker()
            try:
                restored = cluster.rejoin("worker-2",
                                          address=replacement.address)
                assert set(restored) == set(dead[0]["shards"])
                assert set(restored.values()) <= {"replica"}
                stats = cluster.stats()
                assert stats["degraded"] == []
                assert stats["underreplicated"] == []
                expected = single_service.knn(trajectories[:3], k=6)
                got = cluster.knn(trajectories[:3], k=6)
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
            finally:
                replacement.close()

    def test_lost_shard_raises_shard_lost_error(self, trio, trajectories):
        from repro.api import ShardLostError

        with make_cluster(trio, replication=2) as cluster:
            cluster.add(trajectories)
            # shard 1 lives on workers 1 and 2 (ring placement).
            trio[1].close()
            trio[2].close()
            with pytest.raises(ShardLostError, match="shard"):
                cluster.knn(trajectories[0], k=1)
            stats = cluster.stats()
            assert 1 in stats["degraded"]

    def test_snapshot_plus_catchup_restores_a_lost_shard(
            self, trio, single_service, trajectories, tmp_path):
        with make_cluster(trio, replication=2) as cluster:
            cluster.add(trajectories[:12])
            cluster.save(str(tmp_path / "snap"))
            trio[1].close()
            cluster.knn(trajectories[0], k=1)  # notice the death
            cluster.add(trajectories[12:])     # post-snapshot adds
            trio[2].close()                    # shard 1 now has no replica
            replacement = ShardWorker()
            try:
                restored = cluster.rejoin(1, address=replacement.address)
                # shard 1 came back from the snapshot prefix + the
                # catch-up tail; worker 1's other shard from worker 0.
                assert restored[1] in ("snapshot", "catchup")
                got = cluster.knn(trajectories[:3], k=5)
                expected = single_service.knn(trajectories[:3], k=5)
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
            finally:
                replacement.close()

    def test_background_rereplication_heals_the_copy_count(
            self, single_service, trajectories):
        four = [ShardWorker() for _ in range(4)]
        try:
            with ClusterCoordinator([w.address for w in four],
                                    backend="hausdorff", replication=2,
                                    heartbeat_interval=0.1,
                                    heartbeat_timeout=1.0) as cluster:
                cluster.add(trajectories)
                four[0].close()
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    stats = cluster.stats()
                    if (not stats["underreplicated"]
                            and not stats["degraded"]):
                        break
                    time.sleep(0.1)
                stats = cluster.stats()
                assert stats["underreplicated"] == []
                assert stats["degraded"] == []
                assert stats["rereplications"] >= 1
                expected = single_service.knn(trajectories[:3], k=4)
                got = cluster.knn(trajectories[:3], k=4)
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
        finally:
            for worker in four:
                worker.close()

    def test_replication_factor_is_validated(self, workers):
        with pytest.raises(ValueError, match="replication"):
            make_cluster(workers, replication=3)
        with pytest.raises(ValueError, match="replication"):
            make_cluster(workers, replication=0)


class TestFailoverEdgeCases:
    def test_worker_dies_during_join_handshake(self):
        """A listener that accepts and immediately hangs up must fail the
        constructor with a transport error, not a hang — and close()
        still runs cleanly afterwards."""
        from repro.api import TransportError

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        address = listener.getsockname()[:2]
        stop = threading.Event()

        def accept_and_drop():
            listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    sock, _peer = listener.accept()
                except socket.timeout:
                    continue
                sock.close()  # dies mid-handshake

        thread = threading.Thread(target=accept_and_drop, daemon=True)
        thread.start()
        try:
            with pytest.raises((TransportError, OSError)):
                ClusterCoordinator([address], backend="hausdorff",
                                   heartbeat_interval=0,
                                   connect_retries=1, retry_wait=0.01)
        finally:
            stop.set()
            thread.join(timeout=5)
            listener.close()

    def test_two_workers_die_in_one_heartbeat_interval(self, single_service,
                                                       trajectories):
        """W=4, R=2, workers 1 and 3 die together: every shard keeps one
        replica, so the heartbeat degrades both without losing a query."""
        four = [ShardWorker() for _ in range(4)]
        try:
            with ClusterCoordinator([w.address for w in four],
                                    backend="hausdorff", replication=2,
                                    heartbeat_interval=0.1,
                                    heartbeat_timeout=1.0,
                                    rereplicate=False) as cluster:
                cluster.add(trajectories)
                four[1].close()
                four[3].close()
                deadline = time.monotonic() + 15
                while (time.monotonic() < deadline
                       and cluster.stats()["alive_workers"] != 2):
                    time.sleep(0.05)
                stats = cluster.stats()
                assert stats["alive_workers"] == 2
                assert stats["degraded"] == []
                expected = single_service.knn(trajectories[:3], k=4)
                got = cluster.knn(trajectories[:3], k=4)
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
        finally:
            for worker in four:
                worker.close()

    def test_ping_alive_but_command_failing_worker_is_degraded(
            self, single_service, trajectories):
        """Differential diagnosis: a worker that answers ping but errors
        on shard commands is degraded (its replicas cover for it) instead
        of failing the query or surviving as a zombie."""

        class FlakyWorker(ShardWorker):
            def _handlers(self):
                handlers = dict(super()._handlers())

                def broken_knn(_payload):
                    raise RuntimeError("simulated shard fault")

                handlers["knn"] = broken_knn
                return handlers

        flaky = FlakyWorker()
        healthy = ShardWorker()
        try:
            with ClusterCoordinator([flaky.address, healthy.address],
                                    backend="hausdorff", replication=2,
                                    heartbeat_interval=0) as cluster:
                cluster.add(trajectories)
                expected = single_service.knn(trajectories[:3], k=4)
                got = cluster.knn(trajectories[:3], k=4)
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
                stats = cluster.stats()
                dead = [entry for entry in stats["worker_links"]
                        if not entry["alive"]]
                assert len(dead) == 1
                assert "knn failed" in dead[0]["reason"]
        finally:
            flaky.close()
            healthy.close()

    def test_unreplicated_worker_error_propagates(self, trajectories):
        """R=1 keeps the legacy contract: an error reply with no replica
        to re-route to propagates as RemoteCallError and degrades no one."""

        class FlakyWorker(ShardWorker):
            def _handlers(self):
                handlers = dict(super()._handlers())

                def broken_knn(_payload):
                    raise RuntimeError("simulated shard fault")

                handlers["knn"] = broken_knn
                return handlers

        flaky = FlakyWorker()
        healthy = ShardWorker()
        try:
            with ClusterCoordinator([flaky.address, healthy.address],
                                    backend="hausdorff",
                                    heartbeat_interval=0) as cluster:
                cluster.add(trajectories)
                with pytest.raises(RemoteCallError,
                                   match="simulated shard fault"):
                    cluster.knn(trajectories[0], k=2)
                # No replica could have answered instead, so nobody was
                # degraded: the failure is the request's, not a worker's.
                assert cluster.stats()["alive_workers"] == 2
        finally:
            flaky.close()
            healthy.close()


class TestCloseRegression:
    def test_close_survives_workers_that_died_after_degrade(
            self, trio, trajectories):
        """close(shutdown_workers=True) over a mix of up and dead-after-
        degrade workers: no hang, no FrameError escaping the cascade."""
        cluster = ClusterCoordinator([w.address for w in trio],
                                     backend="hausdorff", replication=2,
                                     heartbeat_interval=0.1,
                                     heartbeat_timeout=1.0)
        cluster.add(trajectories[:6])
        trio[0].close()
        deadline = time.monotonic() + 15
        while (time.monotonic() < deadline
               and cluster.stats()["alive_workers"] != 2):
            time.sleep(0.05)
        start = time.monotonic()
        cluster.close(shutdown_workers=True)  # must not raise
        assert time.monotonic() - start < 10.0
        # Idempotent, still quiet.
        cluster.close()

    def test_close_is_prompt_with_live_heartbeat(self, workers,
                                                 trajectories):
        cluster = make_cluster(workers, heartbeat_interval=0.5,
                               heartbeat_timeout=8.0)
        cluster.add(trajectories[:4])
        start = time.monotonic()
        cluster.close()
        # The old close() joined the heartbeat for heartbeat_timeout+1s;
        # the severed-channel wakeup must beat that by a wide margin.
        assert time.monotonic() - start < 5.0
