"""Tests for the framed-message transport layer: codecs, pipe/socket
transports, the ServiceNode dispatcher, and the broadcast discipline."""

import pickle
import socket
import threading

import numpy as np
import pytest

from repro.api.transport import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    FrameError,
    PipeTransport,
    RemoteCallError,
    ServiceNode,
    SocketTransport,
    TransportClosed,
    broadcast,
    broadcast_encoded,
    decode_payload,
    encode_frame,
    encode_payload,
    frame_length,
    merge_transport_stats,
    request,
)


class TestFraming:
    def test_round_trip(self):
        message = ("knn", {"queries": np.arange(6).reshape(3, 2), "k": 2})
        frame = encode_frame(message)
        length = frame_length(frame[:FRAME_HEADER.size])
        assert length == len(frame) - FRAME_HEADER.size
        command, payload = decode_payload(frame[FRAME_HEADER.size:])
        assert command == "knn"
        np.testing.assert_array_equal(payload["queries"],
                                      np.arange(6).reshape(3, 2))

    def test_header_must_be_exact(self):
        with pytest.raises(FrameError, match="header"):
            frame_length(b"\x00\x01")

    def test_oversized_frame_is_refused(self):
        header = FRAME_HEADER.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="exceeds"):
            frame_length(header)

    def test_garbage_payload_is_a_frame_error(self):
        with pytest.raises(FrameError, match="unpickle"):
            decode_payload(b"this is not a pickle")


def socket_transport_pair():
    left, right = socket.socketpair()
    return SocketTransport(left), SocketTransport(right)


@pytest.fixture(params=["pipe", "socket"])
def transport_pair(request):
    if request.param == "pipe":
        left, right = PipeTransport.pair()
    else:
        left, right = socket_transport_pair()
    yield left, right
    left.close()
    right.close()


class TestTransports:
    def test_send_recv_preserves_arrays(self, transport_pair):
        left, right = transport_pair
        payload = np.random.default_rng(0).normal(size=(4, 3))
        left.send(("ok", payload))
        status, received = right.recv()
        assert status == "ok"
        assert received.tobytes() == payload.tobytes()

    def test_poll(self, transport_pair):
        left, right = transport_pair
        assert not right.poll(0.01)
        left.send("ping")
        assert right.poll(1.0)
        assert right.recv() == "ping"

    def test_recv_after_peer_close_raises_closed(self, transport_pair):
        left, right = transport_pair
        left.close()
        with pytest.raises(TransportClosed):
            right.recv()

    def test_close_is_idempotent(self, transport_pair):
        left, _right = transport_pair
        left.close()
        left.close()


class TestSocketFraming:
    def test_truncated_frame_is_a_frame_error(self):
        left, right = socket.socketpair()
        transport = SocketTransport(right)
        # A header promising 100 bytes, then only 3 and EOF.
        left.sendall(FRAME_HEADER.pack(100) + b"abc")
        left.close()
        with pytest.raises(FrameError, match="mid-frame"):
            transport.recv()
        transport.close()

    def test_clean_eof_between_frames_is_closed(self):
        left, right = socket.socketpair()
        transport = SocketTransport(right)
        left.sendall(encode_frame("hello"))
        left.close()
        assert transport.recv() == "hello"
        with pytest.raises(TransportClosed):
            transport.recv()
        transport.close()


class TestShortReads:
    """A TCP peer may deliver a frame in arbitrarily small pieces, or stop
    mid-frame. Partial reads must reassemble; truncation must surface as a
    clean transport error — never a truncated unpickle."""

    def test_byte_dribble_reassembles_the_frame(self):
        left, right = socket.socketpair()
        transport = SocketTransport(right)
        message = {"vector": np.arange(6, dtype=np.float64),
                   "tag": "dribble"}
        frame = encode_frame(message)

        def dribble():
            for i in range(len(frame)):
                left.sendall(frame[i:i + 1])
            left.close()

        thread = threading.Thread(target=dribble)
        thread.start()
        received = transport.recv()
        thread.join(timeout=10)
        assert received["tag"] == "dribble"
        np.testing.assert_array_equal(received["vector"], message["vector"])
        with pytest.raises(TransportClosed):
            transport.recv()  # the dribbler's EOF is a clean hangup
        transport.close()

    def test_back_to_back_frames_parse_cleanly(self):
        left, right = socket.socketpair()
        transport = SocketTransport(right)
        left.sendall(encode_frame("first") + encode_frame("second"))
        assert transport.recv() == "first"
        assert transport.recv() == "second"
        left.close()
        transport.close()

    def test_close_mid_header_is_a_frame_error(self):
        left, right = socket.socketpair()
        transport = SocketTransport(right)
        left.sendall(FRAME_HEADER.pack(64)[:3])  # 3 of the 8 header bytes
        left.close()
        with pytest.raises(FrameError, match="mid-frame"):
            transport.recv()
        transport.close()

    def test_close_mid_body_is_a_frame_error_not_an_unpickle(self):
        left, right = socket.socketpair()
        transport = SocketTransport(right)
        frame = encode_frame({"payload": np.arange(100)})
        left.sendall(frame[:-5])  # everything but the last 5 body bytes
        left.close()
        # FrameError, not pickle.UnpicklingError: the truncated bytes must
        # never reach the unpickler.
        with pytest.raises(FrameError, match="mid-frame"):
            transport.recv()
        transport.close()


def run_node(transport, handlers, **kwargs):
    node = ServiceNode(transport, handlers, **kwargs)
    thread = threading.Thread(target=node.serve_forever, daemon=True)
    thread.start()
    return thread


class TestServiceNode:
    def test_dispatch_and_stop(self):
        caller, server = PipeTransport.pair()
        thread = run_node(server, {"double": lambda x: 2 * x})
        assert request(caller, "double", 21) == 42
        caller.send(("stop", None))
        assert caller.recv() == ("ok", None)
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_handler_error_is_reported_and_survived(self):
        def boom(_payload):
            raise ValueError("intentional")

        caller, server = PipeTransport.pair()
        run_node(server, {"boom": boom, "ping": lambda _: "pong"})
        with pytest.raises(RemoteCallError, match="intentional"):
            request(caller, "boom")
        # The node must keep serving after a handler failure.
        assert request(caller, "ping") == "pong"
        caller.close()

    def test_unknown_command(self):
        caller, server = PipeTransport.pair()
        run_node(server, {})
        with pytest.raises(RemoteCallError, match="unknown command"):
            request(caller, "nope")
        caller.close()

    def test_malformed_request_shape(self):
        caller, server = PipeTransport.pair()
        run_node(server, {"ping": lambda _: "pong"})
        caller.send("not a 2-tuple")
        status, detail = caller.recv()
        assert status == "error" and "malformed request" in detail
        assert request(caller, "ping") == "pong"
        caller.close()

    def test_peer_hangup_ends_the_loop(self):
        caller, server = PipeTransport.pair()
        thread = run_node(server, {})
        caller.close()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_buffered_request_is_served_despite_stop_flag(self):
        # A request the node has already accepted (buffered before the
        # shutdown flag flipped) must be answered, not dropped.
        stop = threading.Event()
        caller, server = PipeTransport.pair()
        caller.send(("ping", None))
        stop.set()
        thread = run_node(server, {"ping": lambda _: "pong"},
                          should_stop=stop.is_set, poll_interval=0.01)
        assert caller.recv() == ("ok", "pong")
        thread.join(timeout=5)
        assert not thread.is_alive()
        caller.close()

    def test_should_stop_ends_idle_loop(self):
        stop = threading.Event()
        caller, server = PipeTransport.pair()
        thread = run_node(server, {"ping": lambda _: "pong"},
                          should_stop=stop.is_set, poll_interval=0.01)
        assert request(caller, "ping") == "pong"
        stop.set()
        thread.join(timeout=5)
        assert not thread.is_alive()
        caller.close()


class TestBroadcast:
    def test_gathers_all_replies_before_raising(self):
        pairs = [PipeTransport.pair() for _ in range(3)]
        callers = [left for left, _ in pairs]

        def handler(payload):
            if payload == "bad":
                raise RuntimeError("shard exploded")
            return payload

        for _, server in pairs:
            run_node(server, {"echo": handler})
        with pytest.raises(RemoteCallError, match="shard exploded"):
            broadcast(callers, "echo", ["fine", "bad", "fine"],
                      who="shard worker")
        # Every reply was drained: the next broadcast stays in sync.
        assert broadcast(callers, "echo", list("abc")) == ["a", "b", "c"]
        for caller in callers:
            caller.close()

    def test_peer_death_during_gather_still_drains_the_rest(self):
        # One peer hanging up instead of replying must not leave the
        # other peers' replies buffered (that would desync later calls).
        pairs = [PipeTransport.pair() for _ in range(3)]
        callers = [left for left, _ in pairs]

        def handler_for(transport, dies):
            def handler(payload):
                if dies:
                    transport.close()  # vanish instead of replying
                return payload
            return handler

        for i, (_, server) in enumerate(pairs):
            run_node(server, {"echo": handler_for(server, i == 1)})
        with pytest.raises(RemoteCallError, match="transport failure"):
            broadcast(callers, "echo", ["a", "b", "c"])
        # The surviving peers answered and were drained: still in sync.
        assert broadcast([callers[0], callers[2]], "echo",
                         ["x", "y"]) == ["x", "y"]
        for caller in callers:
            caller.close()

    def test_who_names_the_failure(self):
        caller, server = PipeTransport.pair()
        run_node(server, {})
        with pytest.raises(RemoteCallError, match="shard worker failed"):
            broadcast([caller], "missing", [None], who="shard worker")
        caller.close()


class TestPipeUnpickling:
    def test_unpicklable_bytes_surface_as_frame_error(self):
        # Drive the raw connection underneath to inject garbage bytes.
        left, right = PipeTransport.pair()
        left._connection.send_bytes(b"\x80garbage that is not a pickle")
        with pytest.raises((FrameError, TransportClosed)):
            right.recv()
        left.close()
        right.close()


class TestWireFormats:
    """Per-payload version sniffing: a binary sender and a pickle sender
    interoperate on the same channel with no handshake."""

    @pytest.mark.parametrize("sender_fmt,receiver_fmt", [
        ("binary", "pickle"), ("pickle", "binary"),
        ("binary", "binary"), ("pickle", "pickle"),
    ])
    def test_mixed_format_pipe_round_trip(self, sender_fmt, receiver_fmt):
        left, right = PipeTransport.pair()
        left._wire_format = sender_fmt
        right._wire_format = receiver_fmt
        payload = np.random.default_rng(7).normal(size=(5, 2))
        left.send(("echo", payload))
        command, received = right.recv()
        assert command == "echo"
        assert received.tobytes() == payload.tobytes()
        right.send(("reply", received * 2))
        _, back = left.recv()
        assert back.tobytes() == (payload * 2).tobytes()
        left.close()
        right.close()

    def test_unknown_wire_format_is_rejected(self):
        with pytest.raises(ValueError, match="unknown wire_format"):
            PipeTransport.pair(wire_format="capnproto")

    def test_binary_beats_pickle_on_array_bytes(self):
        message = ("knn", {"queries": np.zeros((64, 16)), "k": 5})
        binary = encode_payload(message, "binary")
        legacy = encode_payload(message, "pickle")
        assert len(binary) < len(legacy)


class TestTransportStats:
    def test_pipe_counters_track_traffic(self):
        left, right = PipeTransport.pair()
        left.send("ping")
        right.recv()
        right.send("pong")
        left.recv()
        for transport in (left, right):
            stats = transport.stats()
            assert stats["frames_sent"] == 1
            assert stats["frames_recv"] == 1
            assert stats["bytes_sent"] > 0
            assert stats["bytes_recv"] > 0
            assert stats["shm_hits"] == 0
        left.close()
        right.close()

    def test_socket_counters_include_frame_headers(self):
        left, right = socket_transport_pair()
        left.send("ping")
        assert right.recv() == "ping"
        assert left.stats()["bytes_sent"] == \
            right.stats()["bytes_recv"]
        assert left.stats()["bytes_sent"] > FRAME_HEADER.size
        left.close()
        right.close()

    def test_merge_sums_counters_and_keeps_uniform_format(self):
        merged = merge_transport_stats([
            {"wire_format": "binary", "bytes_sent": 10, "frames_sent": 1,
             "bytes_recv": 5, "frames_recv": 1, "shm_hits": 2},
            {"wire_format": "binary", "bytes_sent": 20, "frames_sent": 2,
             "bytes_recv": 15, "frames_recv": 3, "shm_hits": 0},
        ])
        assert merged["bytes_sent"] == 30
        assert merged["frames_sent"] == 3
        assert merged["shm_hits"] == 2
        assert merged["wire_format"] == "binary"

    def test_merge_drops_format_when_mixed(self):
        merged = merge_transport_stats([
            {"wire_format": "binary", "bytes_sent": 1},
            {"wire_format": "pickle", "bytes_sent": 2},
        ])
        assert merged["bytes_sent"] == 3
        assert "wire_format" not in merged


class TestBroadcastEncoded:
    def test_one_encode_reaches_every_peer(self):
        pairs = [PipeTransport.pair() for _ in range(3)]
        callers = [left for left, _ in pairs]
        for _, server in pairs:
            run_node(server, {"echo": lambda payload: payload})
        encoded = encode_payload(("echo", "shared"))
        assert broadcast_encoded(callers, encoded) == ["shared"] * 3
        # Each peer received the same byte count: the payload was
        # serialized once and written verbatim to every channel.
        assert {t.stats()["bytes_sent"] for t in callers} == {len(encoded)}
        for caller in callers:
            caller.close()

    def test_failure_still_drains_every_reply(self):
        pairs = [PipeTransport.pair() for _ in range(3)]
        callers = [left for left, _ in pairs]

        def handler_for(n):
            def handler(payload):
                if n == 1 and payload == "boom":
                    raise RuntimeError("shard exploded")
                return payload
            return handler

        for n, (_, server) in enumerate(pairs):
            run_node(server, {"echo": handler_for(n)})
        with pytest.raises(RemoteCallError, match="shard exploded"):
            broadcast_encoded(callers, encode_payload(("echo", "boom")),
                              who="shard worker")
        # Replies were drained: the channels stay usable and in sync.
        assert broadcast(callers, "echo", ["a", "b", "c"]) == ["a", "b", "c"]
        for caller in callers:
            caller.close()


class TestPipeSharedMemory:
    def test_large_reply_uses_segments_and_cleans_up(self):
        left, right = PipeTransport.pair(shm_threshold=1024)
        array = np.random.default_rng(11).normal(size=(64, 8))
        left.send(("big", array))
        command, received = right.recv()
        assert command == "big"
        assert received.tobytes() == array.tobytes()
        assert left.stats()["shm_hits"] == 1
        del received
        # The peer speaking again proves consumption: segments released.
        right.send(("ack", None))
        left.recv()
        assert left._pool is not None and not left._pool._segments
        left.close()
        right.close()

    def test_pickle_format_pair_never_builds_a_pool(self):
        left, right = PipeTransport.pair(wire_format="pickle")
        left.send(("x", np.zeros((64, 64))))
        right.recv()
        assert left.stats()["shm_hits"] == 0
        left.close()
        right.close()
