"""Tests for the repro.api backend registry and protocols."""

import numpy as np
import pytest

from repro.api import (
    DISTANCE,
    EMBEDDING,
    EmbeddingBackend,
    MeasureBackend,
    as_backend,
    available_backends,
    backend_spec,
    get_backend,
)

HEURISTICS = {"hausdorff", "frechet", "edr", "edwp"}
SELF_SUPERVISED = {"t2vec", "e2dtc", "trjsr", "cstrm"}
SUPERVISED = {"neutraj", "traj2simvec", "t3s", "trajgat"}


def make_trajectories(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return [
        np.cumsum(rng.standard_normal((int(rng.integers(10, 16)), 2)) * 50,
                  axis=0) + 2000.0
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def tiny_trajectories():
    return make_trajectories()


def build_tiny(name, trajectories):
    """Instantiate any backend at smoke scale from raw trajectories."""
    if name in HEURISTICS:
        return get_backend(name)
    kwargs = dict(trajectories=trajectories, dim=8, max_len=16, epochs=1,
                  seed=0)
    if name in SUPERVISED:
        kwargs.update(pairs=16)
    return get_backend(name, **kwargs)


class TestRegistry:
    def test_all_method_families_registered(self):
        names = set(available_backends())
        assert {"trajcl"} | HEURISTICS | SELF_SUPERVISED | SUPERVISED <= names
        assert len(names) >= 13

    def test_unknown_backend_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("no-such-method")

    def test_specs_have_kind_and_description(self):
        for name in available_backends():
            spec = backend_spec(name)
            assert spec.kind in (EMBEDDING, DISTANCE)
            assert spec.description

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_heuristics_resolve_and_score(self, name, tiny_trajectories):
        backend = get_backend(name)
        assert backend.kind == DISTANCE
        a, b = tiny_trajectories[:2]
        assert backend.distance(a, b) >= 0.0
        assert backend.pairwise([a], [a, b]).shape == (1, 2)

    @pytest.mark.parametrize(
        "name", ["trajcl"] + sorted(SELF_SUPERVISED | SUPERVISED)
    )
    def test_learned_backends_encode_right_shape(self, name, tiny_trajectories):
        backend = build_tiny(name, tiny_trajectories)
        assert backend.kind == EMBEDDING
        embeddings = backend.encode(tiny_trajectories[:3])
        assert embeddings.shape[0] == 3
        assert embeddings.shape[1] > 0
        assert np.isfinite(embeddings).all()
        # distance/pairwise come for free from the embedding contract
        assert backend.distance(*tiny_trajectories[:2]) >= 0.0

    def test_distance_backend_refuses_encode(self):
        with pytest.raises(NotImplementedError):
            get_backend("edr").encode([np.zeros((3, 2))])

    def test_learned_backend_requires_a_source(self):
        with pytest.raises(TypeError, match="model= or trajectories="):
            get_backend("t2vec")


class TestAsBackend:
    def test_backend_passthrough(self):
        backend = get_backend("hausdorff")
        assert as_backend(backend) is backend

    def test_wraps_measure_and_model(self, tiny_trajectories):
        from repro.measures import get_measure

        wrapped = as_backend(get_measure("frechet"))
        assert isinstance(wrapped, MeasureBackend)
        assert wrapped.kind == DISTANCE

        model = build_tiny("t2vec", tiny_trajectories).model
        wrapped = as_backend(model)
        assert isinstance(wrapped, EmbeddingBackend)
        assert wrapped.kind == EMBEDDING

    def test_rejects_non_methods(self):
        with pytest.raises(TypeError):
            as_backend(42)

    def test_preserves_target_scale_of_approximators(self, tiny_trajectories):
        backend = build_tiny("neutraj", tiny_trajectories)
        backend.model.target_scale = 10.0
        a, b = tiny_trajectories[:2]
        scaled = backend.pairwise([a], [b])[0, 0]
        backend.model.target_scale = 1.0
        unscaled = backend.pairwise([a], [b])[0, 0]
        assert scaled == pytest.approx(10.0 * unscaled)
