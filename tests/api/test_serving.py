"""Tests for the serving layer: sharded kNN parity with the single-process
service, the batched query queue under concurrent callers, and incremental
IVF behaviour through the service stack."""

import threading

import numpy as np
import pytest

from repro.api import (
    DeadlineExceededError,
    QueryQueue,
    QueueFullError,
    ShardedSimilarityService,
    SimilarityService,
    get_backend,
)

from .test_registry import make_trajectories


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=20, seed=11)


@pytest.fixture(scope="module")
def trajcl_backend(trajectories):
    return get_backend("trajcl", trajectories=trajectories, dim=8, max_len=16,
                       epochs=1, seed=0)


@pytest.fixture(scope="module")
def single_service(trajcl_backend, trajectories):
    return SimilarityService(backend=trajcl_backend).add(trajectories)


@pytest.fixture(scope="module")
def sharded_service(trajcl_backend, trajectories):
    service = ShardedSimilarityService(backend=trajcl_backend, num_workers=3)
    service.add(trajectories)
    yield service
    service.close()


class TestShardedParity:
    def test_knn_identical_to_single_service(self, single_service,
                                             sharded_service, trajectories):
        queries = trajectories[:6]
        d_single, i_single = single_service.knn(queries, k=5)
        d_sharded, i_sharded = sharded_service.knn(queries, k=5)
        np.testing.assert_array_equal(i_single, i_sharded)
        np.testing.assert_allclose(d_single, d_sharded)

    def test_knn_parity_with_exclude_and_dedupe(self, single_service,
                                                sharded_service,
                                                trajectories):
        for kwargs in ({"exclude": 3}, {"dedupe_eps": 1e-9},
                       {"exclude": 3, "dedupe_eps": 1e-9}):
            d_single, i_single = single_service.knn(
                trajectories[3], k=4, **kwargs)
            d_sharded, i_sharded = sharded_service.knn(
                trajectories[3], k=4, **kwargs)
            np.testing.assert_array_equal(i_single, i_sharded)
            np.testing.assert_allclose(d_single, d_sharded)

    def test_distance_backend_parity(self, trajectories):
        single = SimilarityService(backend="hausdorff").add(trajectories)
        with ShardedSimilarityService(backend="hausdorff",
                                      num_workers=2) as sharded:
            sharded.add(trajectories)
            d_single, i_single = single.knn(trajectories[1], k=4, exclude=1)
            d_sharded, i_sharded = sharded.knn(trajectories[1], k=4, exclude=1)
            np.testing.assert_array_equal(i_single, i_sharded)
            np.testing.assert_allclose(d_single, d_sharded)

    def test_more_workers_than_trajectories_pads(self, trajcl_backend,
                                                 trajectories):
        with ShardedSimilarityService(backend=trajcl_backend,
                                      num_workers=4) as sharded:
            sharded.add(trajectories[:2])
            distances, ids = sharded.knn(trajectories[0], k=5, exclude=0)
            assert ids.shape == (1, 5)
            assert (ids[0, 1:] == -1).all()
            assert np.isinf(distances[0, 1:]).all()

    def test_pairwise_matches_single_service(self, single_service,
                                             sharded_service, trajectories):
        queries = trajectories[:4]
        np.testing.assert_allclose(single_service.pairwise(queries),
                                   sharded_service.pairwise(queries))
        np.testing.assert_allclose(
            single_service.pairwise(queries, trajectories[:3]),
            sharded_service.pairwise(queries, trajectories[:3]),
        )

    def test_incremental_add_keeps_parity(self, trajcl_backend, trajectories):
        single = SimilarityService(backend=trajcl_backend)
        with ShardedSimilarityService(backend=trajcl_backend,
                                      num_workers=2) as sharded:
            for chunk in (trajectories[:7], trajectories[7:12],
                          trajectories[12:]):
                single.add(chunk)
                sharded.add(chunk)
            assert len(sharded) == len(single) == len(trajectories)
            assert sum(sharded.shard_sizes) == len(trajectories)
            d_single, i_single = single.knn(trajectories[9], k=6, exclude=9)
            d_sharded, i_sharded = sharded.knn(trajectories[9], k=6, exclude=9)
            np.testing.assert_array_equal(i_single, i_sharded)
            np.testing.assert_allclose(d_single, d_sharded)

    def test_ivf_recall_at_least_single_service(self, trajcl_backend,
                                                trajectories):
        queries = trajectories[:8]
        exact = SimilarityService(backend=trajcl_backend).add(trajectories)
        _, truth = exact.knn(queries, k=3)
        ivf_single = SimilarityService(
            backend=trajcl_backend, index="ivf",
            index_kwargs={"n_lists": 4, "n_probe": 2, "seed": 0},
        ).add(trajectories)
        _, approx_single = ivf_single.knn(queries, k=3)
        with ShardedSimilarityService(
            backend=trajcl_backend, index="ivf", num_workers=2,
            index_kwargs={"n_lists": 4, "n_probe": 2, "seed": 0},
        ) as sharded:
            sharded.add(trajectories)
            _, approx_sharded = sharded.knn(queries, k=3)

        def recall(approx):
            return sum(
                len(set(approx[i]) & set(truth[i])) for i in range(len(truth))
            ) / truth.size

        assert recall(approx_sharded) >= recall(approx_single)

    def test_empty_query_batch(self, sharded_service):
        distances, ids = sharded_service.knn([], k=3)
        assert distances.shape == (0, 3)
        assert ids.shape == (0, 3)

    def test_worker_error_keeps_rpc_in_sync(self, sharded_service,
                                            trajectories):
        # A failing command must drain every shard's reply before raising,
        # or the next command would read a stale buffered response.
        with pytest.raises(RuntimeError, match="unknown command"):
            sharded_service._broadcast(
                "no-such-command", [None] * sharded_service.num_workers)
        assert sum(sharded_service._broadcast(
            "len", [None] * sharded_service.num_workers)
        ) == len(trajectories)
        _, ids = sharded_service.knn(trajectories[0], k=3)
        assert ids.shape == (1, 3)

    def test_validation_and_lifecycle(self, trajcl_backend, trajectories):
        with pytest.raises(ValueError, match="num_workers"):
            ShardedSimilarityService(backend=trajcl_backend, num_workers=0)
        service = ShardedSimilarityService(backend=trajcl_backend,
                                           num_workers=2)
        with pytest.raises(RuntimeError, match="empty"):
            service.knn(trajectories[0], k=1)
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            service.add(trajectories)

    def test_close_survives_a_dead_worker(self, trajectories):
        """close() must stay bounded when a worker already died — reap it,
        never hang on the handshake or the join."""
        import time

        service = ShardedSimilarityService(backend="hausdorff",
                                           num_workers=2)
        service.add(trajectories)
        victim = service._processes[0]
        victim.terminate()
        victim.join(timeout=5)
        start = time.monotonic()
        service.close()
        assert time.monotonic() - start < 10.0
        service.close()  # still idempotent afterwards
        assert all(not p.is_alive() for p in service._processes)

    def test_stats(self, sharded_service, trajectories):
        stats = sharded_service.stats()
        assert stats["workers"] == 3
        assert stats["size"] == len(trajectories)
        assert sum(stats["shard_sizes"]) == len(trajectories)


class TestWireTransportParity:
    """The binary codec and shared-memory transport must be invisible to
    callers: bit-identical answers, counters in stats, no /dev/shm litter."""

    @staticmethod
    def _shm_segments():
        import glob
        import os
        return {os.path.basename(p)
                for p in glob.glob("/dev/shm/repro_wire_*")}

    def test_tiny_shm_threshold_parity_and_cleanup(self, trajcl_backend,
                                                   single_service,
                                                   trajectories):
        import os
        check_fs = os.path.isdir("/dev/shm")
        baseline = self._shm_segments() if check_fs else set()
        service = ShardedSimilarityService(backend=trajcl_backend,
                                           num_workers=2, shm_threshold=1)
        try:
            service.add(trajectories)
            queries = trajectories[:5]
            d_single, i_single = single_service.knn(queries, k=4)
            d_sharded, i_sharded = service.knn(queries, k=4)
            assert i_single.tobytes() == i_sharded.tobytes()
            np.testing.assert_allclose(d_single, d_sharded)
            stats = service.stats()
            assert stats["wire_format"] == "binary"
            assert stats["transport"]["shm_hits"] > 0
        finally:
            service.close()
        if check_fs:
            assert self._shm_segments() <= baseline

    def test_forced_pickle_parity_and_no_shm(self, trajcl_backend,
                                             single_service, trajectories):
        with ShardedSimilarityService(backend=trajcl_backend, num_workers=2,
                                      wire_format="pickle") as service:
            service.add(trajectories)
            d_single, i_single = single_service.knn(trajectories[:5], k=4)
            d_sharded, i_sharded = service.knn(trajectories[:5], k=4)
            assert i_single.tobytes() == i_sharded.tobytes()
            np.testing.assert_allclose(d_single, d_sharded)
            stats = service.stats()
            assert stats["wire_format"] == "pickle"
            assert stats["transport"]["shm_hits"] == 0

    def test_stats_expose_transport_counters(self, sharded_service):
        transport = sharded_service.stats()["transport"]
        for key in ("bytes_sent", "frames_sent", "bytes_recv",
                    "frames_recv", "shm_hits"):
            assert key in transport
            assert transport[key] >= 0
        assert transport["frames_sent"] > 0
        assert transport["bytes_sent"] > transport["frames_sent"] * 8


class TestQueryQueue:
    def test_concurrent_callers_get_correct_results(self, single_service,
                                                    trajectories):
        expected = {
            i: single_service.knn(trajectories[i], k=4, exclude=i)
            for i in range(len(trajectories))
        }
        results = {}
        errors = []

        def caller(i):
            try:
                barrier.wait(timeout=10)
                results[i] = queue.knn(trajectories[i], k=4, exclude=i,
                                       timeout=30)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        barrier = threading.Barrier(len(trajectories))
        with QueryQueue(single_service, max_batch=32,
                        max_wait=0.05) as queue:
            threads = [threading.Thread(target=caller, args=(i,))
                       for i in range(len(trajectories))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            stats = queue.queue_stats
        assert not errors
        assert stats.queries == len(trajectories)
        for i, (row_d, row_i) in results.items():
            exp_d, exp_i = expected[i]
            np.testing.assert_array_equal(row_i, exp_i[0])
            np.testing.assert_allclose(row_d, exp_d[0])

    def test_coalesces_submissions_into_batches(self, single_service,
                                                trajectories):
        with QueryQueue(single_service, max_batch=64, max_wait=0.5) as queue:
            futures = [queue.submit(t, k=3) for t in trajectories]
            for future in futures:
                future.result(timeout=30)
            stats = queue.queue_stats
        assert stats.queries == len(trajectories)
        # The 0.5s window is far longer than the submission loop, so the
        # flush thread must have coalesced (at most one straggler batch).
        assert stats.batches <= 2
        assert stats.largest_batch >= len(trajectories) - 1

    def test_groups_by_query_signature(self, single_service, trajectories):
        with QueryQueue(single_service, max_batch=64, max_wait=0.5) as queue:
            mixed = [queue.submit(trajectories[0], k=2),
                     queue.submit(trajectories[1], k=5),
                     queue.submit(trajectories[2], k=2)]
            (d2a, i2a), (d5, i5), (d2b, i2b) = [
                f.result(timeout=30) for f in mixed
            ]
        assert len(i2a) == len(i2b) == 2
        assert len(i5) == 5

    def test_errors_propagate_to_futures(self, single_service, trajectories):
        with QueryQueue(single_service, max_wait=0.01) as queue:
            future = queue.submit(trajectories[0], k=0)  # invalid k
            with pytest.raises(ValueError, match="k must be"):
                future.result(timeout=30)

    def test_cancelled_future_does_not_kill_the_queue(self, single_service,
                                                      trajectories):
        with QueryQueue(single_service, max_batch=8, max_wait=0.2) as queue:
            doomed = queue.submit(trajectories[0], k=2)
            assert doomed.cancel()
            row_d, row_i = queue.knn(trajectories[1], k=2, timeout=30)
            assert row_i.shape == (2,)
        assert queue.queue_stats.queries == 1  # the cancelled query never ran

    def test_close_drains_then_refuses(self, single_service, trajectories):
        queue = QueryQueue(single_service, max_wait=0.2)
        future = queue.submit(trajectories[0], k=2)
        queue.close()
        assert future.result(timeout=30)[1].shape == (2,)
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(trajectories[0], k=2)

    def test_works_over_sharded_service(self, sharded_service, single_service,
                                        trajectories):
        with QueryQueue(sharded_service, max_batch=16, max_wait=0.05) as queue:
            futures = [queue.submit(t, k=3, exclude=i)
                       for i, t in enumerate(trajectories[:6])]
            rows = [f.result(timeout=30) for f in futures]
        for i, (row_d, row_i) in enumerate(rows):
            exp_d, exp_i = single_service.knn(trajectories[i], k=3, exclude=i)
            np.testing.assert_array_equal(row_i, exp_i[0])
            np.testing.assert_allclose(row_d, exp_d[0])

    def test_validation(self, single_service):
        with pytest.raises(ValueError, match="max_batch"):
            QueryQueue(single_service, max_batch=0)
        with pytest.raises(ValueError, match="max_wait"):
            QueryQueue(single_service, max_wait=-1.0)


class TestQueuePairwise:
    def test_concurrent_pairwise_coalesce_into_one_call(self, single_service,
                                                        trajectories):
        calls = []
        original = single_service.pairwise

        def counting_pairwise(queries, database=None):
            calls.append(len(queries))
            return original(queries, database)

        full = original(trajectories[:6])
        single_service.pairwise = counting_pairwise
        try:
            with QueryQueue(single_service, max_batch=16,
                            max_wait=0.5) as queue:
                futures = [queue.submit_pairwise(trajectories[i])
                           for i in range(6)]
                rows = [f.result(timeout=30) for f in futures]
        finally:
            single_service.pairwise = original
        # One stacked service call for the whole burst (at most one
        # straggler flush), not six.
        assert len(calls) <= 2
        assert sum(calls) == 6
        for i, block in enumerate(rows):
            assert block.shape == (1, len(trajectories))
            np.testing.assert_allclose(block[0], full[i])

    def test_multi_query_blocks_split_correctly(self, single_service,
                                                trajectories):
        with QueryQueue(single_service, max_batch=16, max_wait=0.5) as queue:
            first = queue.submit_pairwise(trajectories[:2])
            second = queue.submit_pairwise(trajectories[2:5])
            a = first.result(timeout=30)
            b = second.result(timeout=30)
        full = single_service.pairwise(trajectories[:5])
        np.testing.assert_allclose(a, full[:2])
        np.testing.assert_allclose(b, full[2:5])

    def test_explicit_database_is_served_unshared(self, single_service,
                                                  trajectories):
        with QueryQueue(single_service, max_wait=0.05) as queue:
            block = queue.pairwise(trajectories[:2], trajectories[5:9],
                                   timeout=30)
        np.testing.assert_allclose(
            block, single_service.pairwise(trajectories[:2],
                                           trajectories[5:9]))

    def test_mixed_knn_and_pairwise_batch(self, single_service, trajectories):
        with QueryQueue(single_service, max_batch=16, max_wait=0.3) as queue:
            knn_future = queue.submit(trajectories[0], k=3)
            matrix_future = queue.submit_pairwise(trajectories[1])
            row_d, row_i = knn_future.result(timeout=30)
            block = matrix_future.result(timeout=30)
        exp_d, exp_i = single_service.knn(trajectories[0], k=3)
        np.testing.assert_array_equal(row_i, exp_i[0])
        np.testing.assert_allclose(block,
                                   single_service.pairwise(trajectories[1]))

    def test_pairwise_over_sharded_service(self, sharded_service,
                                           single_service, trajectories):
        with QueryQueue(sharded_service, max_batch=8, max_wait=0.05) as queue:
            futures = [queue.submit_pairwise(trajectories[i])
                       for i in range(4)]
            rows = [f.result(timeout=30) for f in futures]
        full = single_service.pairwise(trajectories[:4])
        for i, block in enumerate(rows):
            np.testing.assert_allclose(block[0], full[i])

    def test_pairwise_errors_propagate(self, single_service):
        with QueryQueue(single_service, max_wait=0.01) as queue:
            future = queue.submit_pairwise(
                np.zeros((3, 2)), database=object())  # unusable database
            with pytest.raises(Exception):
                future.result(timeout=30)
        # The flush thread survived the failure.
        assert queue.queue_stats.batches >= 0


class _GatedService:
    """Wraps a service so knn blocks until released — makes queue-depth
    tests deterministic instead of racing the flush thread."""

    def __init__(self, inner):
        self.inner = inner
        self.started = threading.Event()
        self.gate = threading.Event()

    def knn(self, queries, k, exclude=None, dedupe_eps=None):
        self.started.set()
        assert self.gate.wait(timeout=30)
        return self.inner.knn(queries, k, exclude=exclude,
                              dedupe_eps=dedupe_eps)


class TestQueueAdmission:
    """Bounded admission (max_pending) and per-request deadlines."""

    def test_validation(self, single_service):
        with pytest.raises(ValueError, match="max_pending"):
            QueryQueue(single_service, max_pending=0)

    def test_queue_full_sheds_and_counts(self, single_service, trajectories):
        gated = _GatedService(single_service)
        with QueryQueue(gated, max_batch=1, max_wait=0.001,
                        max_pending=2) as queue:
            first = queue.submit(trajectories[0], k=2)
            # The flush thread is now parked inside the gated knn; anything
            # submitted from here on sits in the pending deque.
            assert gated.started.wait(timeout=30)
            second = queue.submit(trajectories[1], k=2)
            third = queue.submit(trajectories[2], k=2)
            with pytest.raises(QueueFullError, match="full"):
                queue.submit(trajectories[3], k=2)
            assert queue.pending == 2
            gated.gate.set()
            for future in (first, second, third):
                distances, ids = future.result(timeout=30)
                assert ids.shape == (2,)
            stats = queue.queue_stats
        assert stats.rejected == 1
        assert stats.queries == 3

    def test_expired_deadline_fails_future(self, single_service,
                                           trajectories):
        import time

        with QueryQueue(single_service, max_wait=0.01) as queue:
            expired = queue.submit(trajectories[0], k=2,
                                   deadline=time.monotonic() - 1.0)
            alive = queue.submit(trajectories[1], k=2,
                                 deadline=time.monotonic() + 30.0)
            with pytest.raises(DeadlineExceededError, match="deadline"):
                expired.result(timeout=30)
            distances, ids = alive.result(timeout=30)
            assert ids.shape == (2,)
            stats = queue.queue_stats
        assert stats.expired == 1
        # The expired entry never reached the service.
        assert stats.queries == 1

    def test_expired_pairwise_deadline(self, single_service, trajectories):
        import time

        with QueryQueue(single_service, max_wait=0.01) as queue:
            future = queue.submit_pairwise(trajectories[0],
                                           deadline=time.monotonic() - 1.0)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
        assert queue.queue_stats.expired == 1

    def test_counters_surface_in_stats(self, single_service, trajectories):
        with QueryQueue(single_service, max_wait=0.01,
                        max_pending=8) as queue:
            queue.knn(trajectories[0], k=2, timeout=30)
            report = queue.stats()["queue"]
        assert {"queries", "batches", "largest_batch", "rejected",
                "expired", "pending"} <= set(report)
        assert report["rejected"] == 0
        assert report["expired"] == 0
        assert report["pending"] == 0


class TestUnifiedStats:
    """Every serving layer answers stats() on one shared key set, so
    cluster/fleet health reporting never special-cases a layer."""

    COMMON_KEYS = {"type", "backend", "index", "size", "cache"}

    def test_single_sharded_and_queue_share_the_shape(self, single_service,
                                                      sharded_service,
                                                      trajectories):
        with QueryQueue(single_service, max_wait=0.01) as queue:
            queue.knn(trajectories[0], k=2, timeout=30)
            reports = {
                "single": single_service.stats(),
                "sharded": sharded_service.stats(),
                "queue": queue.stats(),
            }
        for label, stats in reports.items():
            assert self.COMMON_KEYS <= set(stats), label
            assert stats["backend"] == "trajcl", label
            assert stats["size"] == len(trajectories), label
            assert set(stats["cache"]) == {"hits", "misses", "size",
                                           "maxsize"}, label
        assert reports["queue"]["queue"]["queries"] == 1
        # The sharded breakdown covers the whole database.
        shards = reports["sharded"]["shards"]
        assert len(shards) == 3
        assert sum(entry["size"] for entry in shards) == len(trajectories)
        assert reports["sharded"]["cache"]["misses"] > 0

    def test_remote_client_relays_the_shape(self, single_service,
                                            trajectories):
        from repro.api import RemoteSimilarityClient, SimilarityServer

        with SimilarityServer(single_service) as server:
            with RemoteSimilarityClient(*server.address) as client:
                stats = client.stats()
        assert self.COMMON_KEYS <= set(stats)
        assert stats["requests"] >= 1
        assert stats["size"] == len(trajectories)

    def test_stats_probe_does_not_desync_in_flight_queries(
            self, single_service, sharded_service, trajectories):
        """Sharded stats() now does per-worker RPC over the same pipes the
        query path uses; the internal RPC lock must keep a concurrent
        probe (e.g. a server handler thread beside a QueryQueue flush
        thread) from interleaving frames with a kNN broadcast."""
        expected = single_service.knn(trajectories[:2], k=3)
        errors = []
        stop = threading.Event()

        def probe():
            try:
                while not stop.is_set():
                    assert sharded_service.stats()["size"] == \
                        len(trajectories)
            except Exception as error:  # surfaced below
                errors.append(error)

        thread = threading.Thread(target=probe)
        thread.start()
        try:
            for _ in range(50):
                got = sharded_service.knn(trajectories[:2], k=3)
                np.testing.assert_array_equal(got[1], expected[1])
                np.testing.assert_allclose(got[0], expected[0])
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors


class TestStatsLockScope:
    """Regression tests for the unlocked id-bookkeeping commit that
    `repro lint` (C202) flagged: add() used to extend _shard_ids and bump
    _size outside any lock, so a concurrent stats() probe could observe
    shard_sizes summing to something other than size."""

    def test_stats_never_observes_a_half_committed_add(self, trajectories):
        with ShardedSimilarityService(backend=get_backend("hausdorff"),
                                      num_workers=3) as service:
            service.add(trajectories[:3])
            errors = []
            stop = threading.Event()

            def probe():
                try:
                    while not stop.is_set():
                        stats = service.stats()
                        assert sum(stats["shard_sizes"]) == stats["size"], \
                            (stats["shard_sizes"], stats["size"])
                except Exception as error:  # surfaced below
                    errors.append(error)

            thread = threading.Thread(target=probe, daemon=True)
            thread.start()
            try:
                for i in range(25):
                    service.add([trajectories[i % len(trajectories)]])
            finally:
                stop.set()
                thread.join(timeout=30)
            assert not errors, errors
            final = service.stats()
            assert final["size"] == 3 + 25
            assert sum(final["shard_sizes"]) == final["size"]

    def test_shard_sizes_snapshot_is_atomic(self, sharded_service,
                                            trajectories):
        sizes = sharded_service.shard_sizes
        assert sum(sizes) == len(trajectories)
