"""Tests for the fault-injection harness (repro.api.chaos) and the
retry behaviour it exists to exercise: the chaos config/spec surface,
deterministic injection, the transport-level failure taxonomy
(TransientError vs FrameError), the remote client's transparent single
retry, and a chaos-wrapped cluster still answering exactly."""

import pytest

from repro.api import (
    ChaosConfig,
    ChaosTransport,
    ClusterCoordinator,
    RemoteSimilarityClient,
    ShardWorker,
    SimilarityServer,
    SimilarityService,
    TransientError,
)
from repro.api.transport import FrameError

from .test_registry import make_trajectories


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=14, seed=23)


@pytest.fixture(scope="module")
def single_service(trajectories):
    return SimilarityService(backend="hausdorff").add(trajectories)


class _ScriptedTransport:
    """A loopback transport double: records sends, replays canned replies."""

    def __init__(self, replies=None):
        self.sent = []
        self.replies = list(replies or [])
        self.closed = False

    def send(self, message):
        self.sent.append(message)

    def send_encoded(self, payload):
        self.sent.append(payload)

    def recv(self):
        return self.replies.pop(0) if self.replies else ("ok", None)

    def poll(self, timeout=None):
        return True

    def close(self):
        self.closed = True

    def stats(self):
        return {"bytes_sent": 0, "frames_sent": len(self.sent),
                "bytes_recv": 0, "frames_recv": 0}


class TestChaosConfig:
    def test_spec_round_trip(self):
        config = ChaosConfig.from_spec(
            "seed=7, drop=0.05, truncate=0.01, latency=0.1:20, kill=100")
        assert config.seed == 7
        assert config.drop_rate == 0.05
        assert config.truncate_rate == 0.01
        assert config.latency_rate == 0.1
        assert config.latency_ms == 20.0
        assert config.kill_after == 100
        assert config.active

    def test_spec_rejects_unknown_keys_and_bad_rates(self):
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            ChaosConfig.from_spec("dorp=0.1")
        with pytest.raises(ValueError, match="drop_rate"):
            ChaosConfig(drop_rate=1.5)
        with pytest.raises(ValueError, match="kill_after"):
            ChaosConfig(kill_after=-1)

    def test_spawn_is_deterministic_and_decorrelated(self):
        config = ChaosConfig(seed=42, drop_rate=0.1)
        assert config.spawn(1) == config.spawn(1)
        assert config.spawn(1).seed != config.spawn(2).seed
        assert config.spawn(1).drop_rate == 0.1

    def test_inactive_config(self):
        assert not ChaosConfig(seed=9).active
        # Latency needs both a rate and a duration to do anything.
        assert not ChaosConfig(latency_rate=0.5).active


class TestChaosTransport:
    def test_drop_raises_transient_and_closes(self):
        inner = _ScriptedTransport()
        flaky = ChaosTransport(inner, ChaosConfig(seed=1, drop_rate=1.0))
        with pytest.raises(TransientError, match="drop"):
            flaky.send(("ping", None))
        assert inner.closed
        assert flaky.injected["drops"] == 1

    def test_kill_after_is_permanent(self):
        inner = _ScriptedTransport()
        flaky = ChaosTransport(inner, ChaosConfig(seed=1, kill_after=2))
        flaky.send(("a", None))
        flaky.send(("b", None))
        with pytest.raises(TransientError, match="killed"):
            flaky.send(("c", None))
        # Dead stays dead: every later operation fails, poll reports it.
        with pytest.raises(TransientError):
            flaky.recv()
        assert flaky.poll(0.0) is False
        assert flaky.injected["kills"] == 1

    def test_truncation_consumes_the_reply_then_raises_frame_error(self):
        inner = _ScriptedTransport(replies=[("ok", "reply-1")])
        flaky = ChaosTransport(inner, ChaosConfig(seed=1, truncate_rate=1.0))
        with pytest.raises(FrameError, match="truncation"):
            flaky.recv()
        # The real reply was drained so the peer's protocol state stays
        # consistent; only this side saw a torn frame.
        assert not inner.replies
        assert flaky.injected["truncations"] == 1

    def test_same_seed_same_schedule(self):
        def run():
            inner = _ScriptedTransport()
            flaky = ChaosTransport(
                inner, ChaosConfig(seed=99, drop_rate=0.3))
            outcomes = []
            for _ in range(40):
                try:
                    flaky.send(("ping", None))
                    outcomes.append("ok")
                except TransientError:
                    outcomes.append("drop")
                    flaky._transport = _ScriptedTransport()  # "reconnect"
            return outcomes, dict(flaky.injected)

        assert run() == run()

    def test_stats_merges_wrapped_counters_with_chaos_block(self):
        flaky = ChaosTransport(_ScriptedTransport(),
                               ChaosConfig(seed=1, drop_rate=0.0))
        flaky.send(("ping", None))
        stats = flaky.stats()
        assert stats["frames_sent"] == 1
        assert stats["chaos"]["operations"] == 1
        assert stats["chaos"]["drops"] == 0


class TestClientRetry:
    def test_transient_reset_is_retried_once(self, single_service,
                                             trajectories):
        with SimilarityServer(single_service) as server:
            with RemoteSimilarityClient(*server.address) as client:
                expected = single_service.knn(trajectories[:3], k=4)
                # Every operation on the current connection drops; the
                # retry path reconnects with a plain transport and the
                # repeated exchange succeeds.
                client._transport = ChaosTransport(
                    client._transport, ChaosConfig(seed=5, drop_rate=1.0))
                got = client.knn(trajectories[:3], k=4)
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
                stats = client.stats()
                assert stats["retries"] == 1

    def test_partial_reply_is_never_retried(self, single_service,
                                            trajectories):
        with SimilarityServer(single_service) as server:
            client = RemoteSimilarityClient(*server.address)
            try:
                client._transport = ChaosTransport(
                    client._transport,
                    ChaosConfig(seed=5, truncate_rate=1.0))
                with pytest.raises(FrameError):
                    client.knn(trajectories[0], k=2)
                assert client._retries == 0
            finally:
                client._closed = True  # the torn transport is already dead
                client._transport.close()


class TestClusterChaos:
    def test_chaos_wrapped_cluster_stays_exact(self, single_service,
                                               trajectories):
        """Latency-only chaos on every worker link: answers stay
        bit-exact and the coordinator aggregates injection counters."""
        workers = [ShardWorker(), ShardWorker()]
        try:
            with ClusterCoordinator(
                    [w.address for w in workers], backend="hausdorff",
                    heartbeat_interval=0,
                    chaos="seed=11,latency=0.5:1") as cluster:
                cluster.add(trajectories)
                expected = single_service.knn(trajectories[:3], k=4)
                got = cluster.knn(trajectories[:3], k=4)
                assert got[0].tobytes() == expected[0].tobytes()
                assert got[1].tobytes() == expected[1].tobytes()
                stats = cluster.stats()
                assert stats["chaos"]["operations"] > 0
                assert stats["chaos"]["latency"] > 0
        finally:
            for worker in workers:
                worker.close()

    def test_injected_kill_fails_over_with_replication(self, single_service,
                                                       trajectories):
        """A chaos kill on one link mid-traffic behaves exactly like a
        worker crash: degraded link, failover, still bit-exact."""
        workers = [ShardWorker(), ShardWorker()]
        try:
            with ClusterCoordinator(
                    [w.address for w in workers], backend="hausdorff",
                    replication=2, heartbeat_interval=0) as cluster:
                cluster.add(trajectories)
                expected = single_service.knn(trajectories[:3], k=4)
                # Arm a kill switch on worker 0's request link only.
                link = cluster._links[0]
                link.transport = ChaosTransport(
                    link.transport, ChaosConfig(seed=3, kill_after=1))
                failures = 0
                for _ in range(6):
                    try:
                        got = cluster.knn(trajectories[:3], k=4)
                    except Exception:
                        failures += 1
                        continue
                    assert got[0].tobytes() == expected[0].tobytes()
                    assert got[1].tobytes() == expected[1].tobytes()
                assert failures == 0
                stats = cluster.stats()
                assert stats["alive_workers"] == 1
                assert stats["degraded"] == []
        finally:
            for worker in workers:
                worker.close()
