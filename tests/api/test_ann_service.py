"""Tests for the ANN indexes behind the service stack: registration and
exactness flags, SimilarityService composition (exclude/dedupe, stats),
snapshot round-trips for all three compressed indexes, incremental add
after training, the sharded service, and a cluster snapshot restored
onto a different worker count."""

import numpy as np
import pytest

from repro.api import (
    ClusterCoordinator,
    ShardWorker,
    ShardedSimilarityService,
    SimilarityService,
    available_indexes,
    get_backend,
    get_index,
    index_is_exact,
)

from .test_registry import make_trajectories

ANN_NAMES = ["pq", "int8", "hnsw"]


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=20, seed=5)


@pytest.fixture(scope="module")
def backend(trajectories):
    return get_backend("trajcl", trajectories=trajectories, dim=8,
                       max_len=16, epochs=1, seed=0)


def make_service(backend, name):
    # Tiny-corpus knobs: codebooks clamp to the corpus size anyway, and a
    # small train_sample keeps the lazy k-means fast.
    kwargs = {
        "pq": {"n_subspaces": 8, "seed": 0},
        "int8": {},
        "hnsw": {"seed": 0},
    }[name]
    return SimilarityService(backend=backend, index=name,
                             index_kwargs=kwargs)


class TestRegistration:
    def test_ann_indexes_registered(self):
        assert set(ANN_NAMES) <= set(available_indexes())

    def test_exactness_map(self):
        assert index_is_exact("bruteforce")
        assert index_is_exact("segment")
        assert index_is_exact(None)
        for name in ("ivf", *ANN_NAMES):
            assert not index_is_exact(name)
        assert not index_is_exact("no-such-index")

    @pytest.mark.parametrize("name", ANN_NAMES)
    def test_stats_shape(self, name):
        index = get_index(name)
        stats = index.stats()
        assert stats["name"] == name
        assert stats["exact"] is False
        assert stats["size"] == 0


class TestServiceComposition:
    @pytest.mark.parametrize("name", ANN_NAMES)
    def test_knn_with_exclude_and_dedupe(self, backend, trajectories, name):
        service = make_service(backend, name).add(trajectories)
        distances, ids = service.knn(trajectories[:3], k=5, exclude=1)
        assert ids.shape == (3, 5)
        # exclude drops that database id from every row; the service
        # over-fetches from the ANN structure so rows stay k wide.
        assert 1 not in ids
        assert (ids >= 0).all() and (ids < len(trajectories)).all()
        deduped_d, deduped_i = service.knn(trajectories[:3], k=5,
                                           dedupe_eps=1e-9)
        assert deduped_i.shape == (3, 5)
        assert (deduped_d > 1e-9).all()  # self-matches filtered

    @pytest.mark.parametrize("name", ANN_NAMES)
    def test_matches_bruteforce_on_tiny_corpus(self, backend, trajectories,
                                               name):
        # With 20 vectors the codebooks memorize the corpus and the graph
        # beam covers it entirely: ANN results must equal the exact scan.
        exact = SimilarityService(backend=backend).add(trajectories)
        approx = make_service(backend, name).add(trajectories)
        _, want = exact.knn(trajectories[:4], k=3, exclude=1)
        _, got = approx.knn(trajectories[:4], k=3, exclude=1)
        np.testing.assert_array_equal(want, got)

    @pytest.mark.parametrize("name", ANN_NAMES)
    def test_index_stats_exposed(self, backend, trajectories, name):
        service = make_service(backend, name).add(trajectories)
        service.knn(trajectories[:1], k=1)  # force the lazy build
        stats = service.stats()
        info = stats["index_stats"]
        assert info["name"] == name
        assert info["exact"] is False
        assert info["size"] == len(trajectories)
        assert info["memory_bytes"] > 0


class TestSnapshots:
    @pytest.mark.parametrize("name", ANN_NAMES)
    def test_round_trip_is_bit_identical(self, backend, trajectories,
                                         tmp_path, name):
        path = str(tmp_path / f"{name}.npz")
        service = make_service(backend, name).add(trajectories)
        want_d, want_i = service.knn(trajectories[:4], k=5)
        service.save(path)
        restored = SimilarityService.load(path)
        assert restored.index.name == name
        got_d, got_i = restored.knn(trajectories[:4], k=5)
        assert want_d.tobytes() == got_d.tobytes()
        assert want_i.tobytes() == got_i.tobytes()

    @pytest.mark.parametrize("name", ANN_NAMES)
    def test_untrained_buffer_survives_the_round_trip(self, backend,
                                                      trajectories, tmp_path,
                                                      name):
        # Save before any search: the compressed indexes still hold their
        # raw float buffer, and the snapshot must carry it.
        path = str(tmp_path / f"{name}-cold.npz")
        service = make_service(backend, name).add(trajectories)
        service.save(path)
        restored = SimilarityService.load(path)
        _, ids = restored.knn(trajectories[:2], k=3)
        assert ids.shape == (2, 3)
        assert len(restored) == len(trajectories)


class TestIncrementalAdd:
    @pytest.mark.parametrize("name", ANN_NAMES)
    def test_add_after_first_search_stays_queryable(self, backend,
                                                    trajectories, name):
        service = make_service(backend, name).add(trajectories[:12])
        service.knn(trajectories[:1], k=2)  # train/build on the first 12
        service.add(trajectories[12:])
        assert len(service) == len(trajectories)
        _, ids = service.knn(trajectories[12:14], k=1)
        # The newly added trajectories are their own nearest neighbours.
        np.testing.assert_array_equal(ids[:, 0], [12, 13])


class TestShardedAndCluster:
    def test_sharded_service_with_hnsw(self, backend, trajectories):
        exact = SimilarityService(backend=backend).add(trajectories)
        with ShardedSimilarityService(
                backend=backend, num_workers=2, index="hnsw",
                index_kwargs={"seed": 0}) as sharded:
            sharded.add(trajectories)
            _, got = sharded.knn(trajectories[:4], k=3, exclude=1)
        _, want = exact.knn(trajectories[:4], k=3, exclude=1)
        np.testing.assert_array_equal(want, got)

    def test_cluster_snapshot_restores_onto_more_workers(self, backend,
                                                         trajectories,
                                                         tmp_path):
        snapshot = str(tmp_path / "cluster-pq")
        exact = SimilarityService(backend=backend).add(trajectories)
        two = [ShardWorker(), ShardWorker()]
        three = [ShardWorker() for _ in range(3)]
        try:
            with ClusterCoordinator(
                    [w.address for w in two], backend=backend, index="pq",
                    index_kwargs={"n_subspaces": 8, "seed": 0},
                    heartbeat_interval=0) as cluster:
                cluster.add(trajectories)
                cluster.knn(trajectories[:1], k=1)  # train the shard PQs
                cluster.save(snapshot)
            restored = ClusterCoordinator.load(
                snapshot, [w.address for w in three], heartbeat_interval=0)
            try:
                assert len(restored) == len(trajectories)
                assert restored.stats()["workers"] == 3
                _, got = restored.knn(trajectories[:4], k=3, exclude=1)
            finally:
                restored.close()
        finally:
            for worker in two + three:
                worker.close()
        # Indexes are rebuilt per shard on load; on this corpus the PQ
        # codebooks memorize their shards, so the merged answer matches
        # the exact unsharded scan.
        _, want = exact.knn(trajectories[:4], k=3, exclude=1)
        np.testing.assert_array_equal(want, got)
