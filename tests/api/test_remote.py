"""Tests for the remote serving layer: bit-identical parity through the
sync and asyncio clients, composition with QueryQueue and sharding, and
the error paths (malformed frames, mid-request disconnects, shutdown with
in-flight queries)."""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.api import (
    AsyncSimilarityClient,
    KnnService,
    QueryQueue,
    RemoteCallError,
    RemoteSimilarityClient,
    ShardedSimilarityService,
    SimilarityServer,
    SimilarityService,
    get_backend,
)
from repro.api.remote import parse_address
from repro.api.transport import FRAME_HEADER, SocketTransport, encode_frame

from .test_registry import make_trajectories


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories(n=18, seed=7)


@pytest.fixture(scope="module")
def local_service(trajectories):
    return SimilarityService(backend="hausdorff").add(trajectories)


@pytest.fixture()
def server(local_service):
    with SimilarityServer(local_service) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with RemoteSimilarityClient(*server.address) as cli:
        yield cli


class TestParseAddress:
    def test_forms(self):
        assert parse_address("localhost:9000") == ("localhost", 9000)
        assert parse_address(("10.0.0.1", 80)) == ("10.0.0.1", 80)
        assert parse_address("10.0.0.1", 80) == ("10.0.0.1", 80)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_address("no-port-here")
        with pytest.raises(ValueError, match="host:port"):
            parse_address(":123")


class TestRemoteParity:
    def test_knn_bit_identical(self, local_service, client, trajectories):
        queries = trajectories[:5]
        local_d, local_i = local_service.knn(queries, k=4, exclude=2)
        remote_d, remote_i = client.knn(queries, k=4, exclude=2)
        assert local_d.tobytes() == remote_d.tobytes()
        assert local_i.tobytes() == remote_i.tobytes()

    def test_knn_with_dedupe(self, local_service, client, trajectories):
        local = local_service.knn(trajectories[0], k=3, dedupe_eps=1e-9)
        remote = client.knn(trajectories[0], k=3, dedupe_eps=1e-9)
        np.testing.assert_array_equal(local[1], remote[1])
        np.testing.assert_array_equal(local[0], remote[0])

    def test_pairwise_and_len(self, local_service, client, trajectories):
        np.testing.assert_array_equal(
            local_service.pairwise(trajectories[:3]),
            client.pairwise(trajectories[:3]),
        )
        np.testing.assert_array_equal(
            local_service.pairwise(trajectories[:2], trajectories[3:6]),
            client.pairwise(trajectories[:2], trajectories[3:6]),
        )
        assert len(client) == len(local_service)

    def test_stats_reports_the_service(self, client, local_service):
        stats = client.stats()
        assert stats["backend"] == "hausdorff"
        assert stats["size"] == len(local_service)
        assert stats["requests"] >= 1

    def test_remote_add_extends_database(self, trajectories):
        service = SimilarityService(backend="frechet").add(trajectories[:4])
        with SimilarityServer(service) as server:
            with RemoteSimilarityClient(*server.address) as client:
                assert client.add(trajectories[4:6]) == 6
                assert len(client) == 6
        distances, ids = service.knn(trajectories[5], k=1, exclude=5)
        assert ids[0, 0] >= 0

    def test_client_satisfies_knn_service_protocol(self, client):
        assert isinstance(client, KnnService)

    def test_async_client_bit_identical(self, local_service, server,
                                        trajectories):
        queries = trajectories[:5]
        local_d, local_i = local_service.knn(queries, k=4, exclude=2)

        async def go():
            async with await AsyncSimilarityClient.connect(
                    server.address) as cli:
                result = await cli.knn(queries, k=4, exclude=2)
                stats = await cli.stats()
                size = await cli.size()
            return result, stats, size

        (remote_d, remote_i), stats, size = asyncio.run(go())
        assert local_d.tobytes() == remote_d.tobytes()
        assert local_i.tobytes() == remote_i.tobytes()
        assert stats["backend"] == "hausdorff"
        assert size == len(local_service)

    def test_async_concurrent_clients(self, local_service, server,
                                      trajectories):
        async def go():
            clients = [await AsyncSimilarityClient.connect(server.address)
                       for _ in range(3)]
            results = await asyncio.gather(*(
                clients[i % 3].knn(trajectories[i], k=3, exclude=i)
                for i in range(9)
            ))
            for cli in clients:
                await cli.close()
            return results

        results = asyncio.run(go())
        for i, (remote_d, remote_i) in enumerate(results):
            local_d, local_i = local_service.knn(trajectories[i], k=3,
                                                 exclude=i)
            np.testing.assert_array_equal(local_i, remote_i)
            np.testing.assert_array_equal(local_d, remote_d)


class TestMixedVersionParity:
    """A new-codec peer and a forced-pickle peer must agree bit-for-bit:
    the version sniff in decode_payload negotiates per payload, so every
    client/server format pairing serves identical kNN answers."""

    @pytest.mark.parametrize("client_fmt,server_fmt", [
        ("binary", "pickle"), ("pickle", "binary"),
        ("binary", "binary"), ("pickle", "pickle"),
    ])
    def test_knn_bit_identical_across_formats(self, local_service,
                                              trajectories, client_fmt,
                                              server_fmt):
        queries = trajectories[:4]
        local_d, local_i = local_service.knn(queries, k=4, exclude=1)
        with SimilarityServer(local_service,
                              wire_format=server_fmt) as server:
            with RemoteSimilarityClient(*server.address,
                                        wire_format=client_fmt) as client:
                remote_d, remote_i = client.knn(queries, k=4, exclude=1)
        assert local_d.tobytes() == remote_d.tobytes()
        assert local_i.tobytes() == remote_i.tobytes()

    def test_transport_stats_visible_on_both_ends(self, local_service,
                                                  trajectories):
        with SimilarityServer(local_service,
                              wire_format="binary") as server:
            with RemoteSimilarityClient(*server.address,
                                        wire_format="binary") as client:
                client.knn(trajectories[0], k=2)
                client_stats = client.transport_stats()
                info = client.stats()
        assert client_stats["frames_sent"] >= 1
        assert client_stats["bytes_sent"] > 0
        assert client_stats["wire_format"] == "binary"
        server_side = info["server_transport"]
        assert server_side["frames_recv"] >= 1
        assert server_side["bytes_recv"] > 0


class TestComposition:
    def test_query_queue_over_remote_client(self, local_service, server,
                                            trajectories):
        """RemoteSimilarityClient is a KnnService: QueryQueue batches onto
        it exactly as onto a local service, with identical results."""
        with RemoteSimilarityClient(*server.address) as client:
            with QueryQueue(client, max_batch=8, max_wait=0.02) as queue:
                futures = [queue.submit(t, k=3, exclude=i)
                           for i, t in enumerate(trajectories[:6])]
                rows = [f.result(timeout=30) for f in futures]
        for i, (row_d, row_i) in enumerate(rows):
            local_d, local_i = local_service.knn(trajectories[i], k=3,
                                                 exclude=i)
            assert local_d[0].tobytes() == row_d.tobytes()
            assert local_i[0].tobytes() == row_i.tobytes()

    def test_server_over_query_queue_batches_connections(self, local_service,
                                                         trajectories):
        with QueryQueue(local_service, max_batch=16, max_wait=0.02) as queue:
            with SimilarityServer(queue) as server:
                results = {}

                def caller(i):
                    with RemoteSimilarityClient(*server.address) as cli:
                        results[i] = cli.knn(trajectories[i], k=3, exclude=i)

                threads = [threading.Thread(target=caller, args=(i,))
                           for i in range(5)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
            stats = queue.queue_stats
        assert len(results) == 5
        assert stats.queries == 5
        for i, (remote_d, remote_i) in results.items():
            local_d, local_i = local_service.knn(trajectories[i], k=3,
                                                 exclude=i)
            np.testing.assert_array_equal(local_i, remote_i)
            np.testing.assert_allclose(local_d, remote_d)

    def test_server_over_sharded_service(self, local_service, trajectories):
        with ShardedSimilarityService(backend="hausdorff",
                                      num_workers=2) as shards:
            shards.add(trajectories)
            with SimilarityServer(shards) as server:
                with RemoteSimilarityClient(*server.address) as client:
                    remote_d, remote_i = client.knn(trajectories[:4], k=5)
                    stats = client.stats()
        local_d, local_i = local_service.knn(trajectories[:4], k=5)
        assert local_d.tobytes() == remote_d.tobytes()
        assert local_i.tobytes() == remote_i.tobytes()
        assert stats["workers"] == 2


class TestErrorPaths:
    def test_service_error_propagates_not_kills(self, client, trajectories):
        with pytest.raises(RemoteCallError, match="k must be"):
            client.knn(trajectories[0], k=0)
        # Same connection still answers afterwards.
        distances, ids = client.knn(trajectories[0], k=2)
        assert ids.shape == (1, 2)

    def test_malformed_frame_kills_only_that_connection(self, server,
                                                        local_service,
                                                        trajectories):
        raw = socket.create_connection(server.address, timeout=5)
        raw.sendall(b"GET / HTTP/1.1\r\n\r\n")  # not a frame
        # The server abandons the stream: we observe EOF (possibly after a
        # best-effort error reply).
        raw.settimeout(5)
        tail = b""
        try:
            while True:
                chunk = raw.recv(4096)
                if not chunk:
                    break
                tail += chunk
        except socket.timeout:
            pytest.fail("server kept a garbage connection open")
        finally:
            raw.close()
        # ...and keeps serving everyone else.
        with RemoteSimilarityClient(*server.address) as client:
            _, ids = client.knn(trajectories[0], k=2)
            assert ids.shape == (1, 2)

    def test_disconnect_mid_request_is_isolated(self, server, trajectories):
        raw = socket.create_connection(server.address, timeout=5)
        # Header promising a large body, then hang up mid-frame.
        raw.sendall(FRAME_HEADER.pack(1 << 20) + b"only a few bytes")
        raw.close()
        time.sleep(0.05)
        with RemoteSimilarityClient(*server.address) as client:
            _, ids = client.knn(trajectories[0], k=2)
            assert ids.shape == (1, 2)

    def test_oversized_frame_is_rejected(self, server, trajectories):
        raw = socket.create_connection(server.address, timeout=5)
        transport = SocketTransport(raw)
        raw.sendall(FRAME_HEADER.pack(1 << 40))  # over MAX_FRAME_BYTES
        # Server replies with an error frame and/or hangs up; either way a
        # fresh connection still works.
        transport.close()
        with RemoteSimilarityClient(*server.address) as client:
            assert len(client) == len(trajectories)

    def test_shutdown_with_in_flight_queries(self, local_service,
                                             trajectories):
        """close() lets a dispatched query finish; later calls fail cleanly
        instead of hanging."""
        server = SimilarityServer(local_service)
        client = RemoteSimilarityClient(*server.address)
        results, failures = [], []

        def hammer():
            try:
                for i in range(200):
                    results.append(client.knn(trajectories[i % 6], k=2))
            except (RemoteCallError, ConnectionError, RuntimeError) as error:
                failures.append(error)

        thread = threading.Thread(target=hammer)
        thread.start()
        time.sleep(0.05)  # let some queries through
        start = time.monotonic()
        server.close()
        assert time.monotonic() - start < 10.0  # bounded shutdown
        thread.join(timeout=30)
        assert not thread.is_alive()
        client.close()
        # Whatever completed before the shutdown is intact.
        for distances, ids in results:
            assert ids.shape == (1, 2)

    def test_connect_to_closed_server_fails_fast(self, local_service):
        server = SimilarityServer(local_service)
        host, port = server.address
        server.close()
        with pytest.raises((ConnectionError, OSError)):
            RemoteSimilarityClient(host, port, timeout=2).knn(
                np.zeros((4, 2)), k=1)

    def test_client_connect_retries_until_server_boots(self, local_service,
                                                       trajectories):
        """A client launched alongside the server no longer races its bind:
        bounded retry with backoff bridges the boot window."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        box = {}

        def boot():
            time.sleep(0.4)
            box["server"] = SimilarityServer(local_service, port=port)

        thread = threading.Thread(target=boot)
        thread.start()
        try:
            with RemoteSimilarityClient("127.0.0.1", port,
                                        connect_retries=20,
                                        retry_wait=0.05) as client:
                assert len(client) == len(local_service)
        finally:
            thread.join(timeout=10)
            if "server" in box:
                box["server"].close()

    def test_max_requests_shuts_down(self, local_service, trajectories):
        server = SimilarityServer(local_service, max_requests=2)
        with RemoteSimilarityClient(*server.address) as client:
            client.knn(trajectories[0], k=2)
            client.stats()  # second request trips the limit
        for _ in range(100):
            if server.closed:
                break
            time.sleep(0.02)
        assert server.closed
        server.close()


class TestMultiClientSoak:
    """N concurrent clients, each its own connection, M requests apiece —
    the replies must never cross-talk and the server must close cleanly
    with every handler reaped."""

    def test_concurrent_clients_zero_crosstalk(self, local_service,
                                               trajectories):
        clients, per_client = 6, 15
        expected = {
            i: local_service.knn(trajectories[i], k=4, exclude=i)
            for i in range(len(trajectories))
        }
        failures = []
        barrier = threading.Barrier(clients)
        server = SimilarityServer(local_service)

        def worker(worker_id):
            try:
                with RemoteSimilarityClient(*server.address) as cli:
                    barrier.wait(timeout=30)
                    for step in range(per_client):
                        i = (worker_id * 7 + step) % len(trajectories)
                        d, ids = cli.knn(trajectories[i], k=4, exclude=i)
                        exp_d, exp_i = expected[i]
                        # Bit-identical or it's another caller's answer.
                        assert d.tobytes() == exp_d.tobytes(), (worker_id, i)
                        assert ids.tobytes() == exp_i.tobytes(), (worker_id, i)
            except Exception as error:  # surfaced below
                failures.append((worker_id, repr(error)))

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(clients)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
            assert not failures, failures[:3]
            with RemoteSimilarityClient(*server.address) as cli:
                assert cli.stats()["requests"] >= clients * per_client
        finally:
            server.close()
        assert server.closed
        server.close()  # idempotent after a soak, like everywhere else


class TestSignalShutdown:
    def test_sigterm_runs_graceful_shutdown(self, local_service):
        import signal

        from repro.api.remote import install_signal_shutdown

        server = SimilarityServer(local_service)
        previous = signal.getsignal(signal.SIGTERM)
        try:
            assert install_signal_shutdown(server.shutdown) is True
            signal.raise_signal(signal.SIGTERM)
            # The handler only sets the event; serve_forever runs close().
            server.serve_forever(poll_interval=0.01)
            assert server.closed
        finally:
            signal.signal(signal.SIGTERM, previous)
            server.close()

    def test_refuses_off_main_thread(self):
        from repro.api.remote import install_signal_shutdown

        outcome = []
        thread = threading.Thread(
            target=lambda: outcome.append(
                install_signal_shutdown(lambda: None)))
        thread.start()
        thread.join(timeout=30)
        assert outcome == [False]


@pytest.mark.slow
class TestSustainedServing:
    """Stress the full stack: many threaded clients hammering a server
    backed by a QueryQueue over a sharded service. Deselected from tier-1
    (`slow`); run via `make test-all`."""

    def test_mixed_workload_stays_correct(self, trajectories):
        expected = {}
        local = SimilarityService(backend="hausdorff").add(trajectories)
        for i in range(len(trajectories)):
            expected[i] = local.knn(trajectories[i], k=4, exclude=i)
        full = local.pairwise(trajectories)

        failures = []
        with ShardedSimilarityService(backend="hausdorff",
                                      num_workers=2) as shards:
            shards.add(trajectories)
            with QueryQueue(shards, max_batch=32, max_wait=0.005) as queue:
                with SimilarityServer(queue) as server:

                    def worker(worker_id):
                        try:
                            with RemoteSimilarityClient(
                                    *server.address) as cli:
                                for step in range(25):
                                    i = (worker_id + step) % len(trajectories)
                                    d, ids = cli.knn(trajectories[i], k=4,
                                                     exclude=i)
                                    exp_d, exp_i = expected[i]
                                    assert d.tobytes() == exp_d.tobytes()
                                    assert ids.tobytes() == exp_i.tobytes()
                                    if step % 10 == 0:
                                        block = cli.pairwise(trajectories[i])
                                        np.testing.assert_allclose(
                                            block[0], full[i])
                        except Exception as error:  # surfaced below
                            failures.append((worker_id, error))

                    threads = [threading.Thread(target=worker, args=(w,))
                               for w in range(8)]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=120)
                    stats = queue.queue_stats
        assert not failures, failures[:3]
        assert stats.queries >= 8 * 25


class TestSeededTrajclParity:
    """The paper's backend through the full stack on a seeded dataset."""

    def test_remote_and_queue_parity(self, trajectories):
        backend = get_backend("trajcl", trajectories=trajectories, dim=8,
                              max_len=16, epochs=1, seed=3)
        local = SimilarityService(backend=backend).add(trajectories)
        local_d, local_i = local.knn(trajectories[:4], k=5, exclude=1)
        with SimilarityServer(local) as server:
            with RemoteSimilarityClient(*server.address) as client:
                remote_d, remote_i = client.knn(trajectories[:4], k=5,
                                                exclude=1)
                with QueryQueue(client, max_batch=8,
                                max_wait=0.02) as queue:
                    queued = [queue.knn(trajectories[i], k=5, exclude=1,
                                        timeout=30) for i in range(4)]

            async def go():
                async with await AsyncSimilarityClient.connect(
                        server.address) as cli:
                    return await cli.knn(trajectories[:4], k=5, exclude=1)

            async_d, async_i = asyncio.run(go())
        assert local_d.tobytes() == remote_d.tobytes()
        assert local_i.tobytes() == remote_i.tobytes()
        assert local_d.tobytes() == async_d.tobytes()
        assert local_i.tobytes() == async_i.tobytes()
        for row, (row_d, row_i) in enumerate(queued):
            assert local_d[row].tobytes() == row_d.tobytes()
            assert local_i[row].tobytes() == row_i.tobytes()


class TestRequestCounterLockScope:
    """Regression test for the unlocked _request_count read that the
    lint sweep surfaced: handle_stats (and __repr__) read the counter
    without _count_lock while handler threads increment under it."""

    def test_request_count_is_exact_after_concurrent_traffic(
            self, server, trajectories):
        per_client = 10
        errors = []

        def hammer():
            try:
                with RemoteSimilarityClient(*server.address) as cli:
                    for _ in range(per_client):
                        cli.knn(trajectories[0], k=2)
            except Exception as error:  # surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hammer, daemon=True)
                   for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        with RemoteSimilarityClient(*server.address) as cli:
            stats = cli.stats()
        # every knn plus the stats probe itself, counted exactly once
        assert stats["requests"] == 3 * per_client + 1
        assert f"requests={3 * per_client + 1}" in repr(server)
