"""End-to-end CLI smoke: generate → train → evaluate → knn on a tiny
dataset. Marked ``smoke`` so `make smoke` runs just this path (< 1 min)."""

import numpy as np
import pytest

from repro.cli import main

pytestmark = pytest.mark.smoke


@pytest.mark.parametrize("city", ["porto"])
def test_cli_pipeline_end_to_end(tmp_path, capsys, city):
    data = str(tmp_path / "city.npz")
    checkpoint = str(tmp_path / "model.npz")
    embeddings = str(tmp_path / "emb.npy")

    assert main(["generate", "--city", city, "--count", "30",
                 "--seed", "0", "--output", data]) == 0
    assert main(["train", "--city", city, "--count", "40", "--epochs", "1",
                 "--seed", "0", "--output", checkpoint]) == 0
    assert main(["encode", "--checkpoint", checkpoint, "--data", data,
                 "--output", embeddings]) == 0
    assert np.load(embeddings).shape[0] == 30

    assert main(["evaluate", "--checkpoint", checkpoint, "--data", data,
                 "--backend", "trajcl", "--queries", "4",
                 "--database", "20"]) == 0
    out = capsys.readouterr().out
    assert "TrajCL" in out and "mean rank" in out

    assert main(["knn", "--checkpoint", checkpoint, "--data", data,
                 "--backend", "trajcl", "--query", "1", "--k", "3"]) == 0
    out = capsys.readouterr().out
    assert "3NN of trajectory 1" in out and "#3:" in out

    assert main(["backends"]) == 0
    assert "trajcl" in capsys.readouterr().out
