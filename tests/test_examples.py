"""Smoke tests: the example scripts' helper functions stay importable/correct.

Full example runs train models and are exercised manually / in CI-nightly;
here we verify the cheap pure functions and that every example module
parses and exposes a ``main``.
"""

import importlib.util
import pathlib

import numpy as np
import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_defines_main(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"
    assert module.__doc__, f"{path.stem} lacks a module docstring"


def test_examples_cover_required_scenarios():
    names = {path.stem for path in EXAMPLE_FILES}
    assert {"quickstart", "knn_search", "approximate_heuristic",
            "cross_city"} <= names
    assert len(names) >= 4


def test_gallery_render_marks_endpoints():
    gallery = load_example(EXAMPLES_DIR / "augmentation_gallery.py")
    points = np.array([[0.0, 0.0], [50.0, 50.0], [100.0, 100.0]])
    art = gallery.render(points, (0, 0, 100, 100), width=20, height=10)
    assert "S" in art and "E" in art
    assert len(art.splitlines()) == 10
