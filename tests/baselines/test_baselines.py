"""Tests for the learned baseline measures (self-supervised + supervised)."""

import numpy as np
import pytest

from repro.baselines import (
    CSTRM,
    T3S,
    CoordinateScaler,
    E2DTC,
    MemoryBudgetExceeded,
    NeuTraj,
    T2Vec,
    Traj2SimVec,
    TrajGAT,
    TrjSR,
    rasterize,
    sample_training_pairs,
)
from repro.measures import Hausdorff
from repro.trajectory import Grid


def make_trajectories(n=16, seed=0, min_pts=12, max_pts=24):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        length = int(rng.integers(min_pts, max_pts + 1))
        out.append(np.cumsum(rng.standard_normal((length, 2)) * 50, axis=0) + 2000.0)
    return out


@pytest.fixture(scope="module")
def trajectories():
    return make_trajectories()


@pytest.fixture(scope="module")
def grid(trajectories):
    return Grid.covering(trajectories, cell_size=200)


class TestCoordinateScaler:
    def test_maps_to_unit_box(self, trajectories):
        scaler = CoordinateScaler().fit(trajectories)
        for t in trajectories:
            scaled = scaler.transform(t)
            assert scaled.min() >= -1e-9 and scaled.max() <= 1 + 1e-9

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CoordinateScaler().transform(np.zeros((3, 2)))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            CoordinateScaler().fit([])

    def test_batch_padding(self, trajectories):
        scaler = CoordinateScaler().fit(trajectories)
        batch, lengths = scaler.transform_batch(trajectories[:4], max_len=30)
        assert batch.shape == (4, 30, 2)
        assert (lengths <= 30).all()


def test_sample_training_pairs_distinct():
    left, right = sample_training_pairs(10, 200, np.random.default_rng(0))
    assert (left != right).all()
    assert len(left) == len(right) <= 200


class TestT2Vec:
    def test_embedding_shape(self, grid, trajectories):
        model = T2Vec(grid, embedding_dim=8, hidden_dim=12, max_len=32,
                      rng=np.random.default_rng(0))
        emb = model.encode(trajectories[:5])
        assert emb.shape == (5, 12)

    def test_training_reduces_loss(self, grid, trajectories):
        model = T2Vec(grid, embedding_dim=8, hidden_dim=12, max_len=32,
                      rng=np.random.default_rng(1))
        losses = model.fit(trajectories, epochs=3, batch_size=8,
                           rng=np.random.default_rng(2))
        assert losses[-1] < losses[0]

    def test_smoothed_targets_are_distributions(self, grid):
        model = T2Vec(grid, embedding_dim=8, hidden_dim=8, max_len=16,
                      rng=np.random.default_rng(3))
        tokens = np.array([[0, 5, grid.n_cells - 1]])
        targets = model._smoothed_targets(tokens)
        np.testing.assert_allclose(targets.sum(axis=-1), 1.0, atol=1e-9)
        assert targets[0, 0, 0] == pytest.approx(0.8)

    def test_fit_empty_raises(self, grid):
        model = T2Vec(grid, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.fit([])

    def test_distance_matrix(self, grid, trajectories):
        model = T2Vec(grid, embedding_dim=8, hidden_dim=12, max_len=32,
                      rng=np.random.default_rng(4))
        matrix = model.distance_matrix(trajectories[:3], trajectories[:6])
        assert matrix.shape == (3, 6)
        np.testing.assert_allclose(np.diag(matrix[:, :3]), 0.0, atol=1e-9)


class TestE2DTC:
    def test_fit_runs_both_phases(self, grid, trajectories):
        model = E2DTC(grid, n_clusters=4, embedding_dim=8, hidden_dim=12,
                      max_len=32, rng=np.random.default_rng(0))
        losses = model.fit(trajectories, epochs=1, cluster_epochs=2,
                           batch_size=8, rng=np.random.default_rng(1))
        assert len(losses) == 3  # 1 seq2seq epoch + 2 cluster rounds
        assert model.cluster_centers is not None
        assert model.cluster_centers.shape[1] == 12

    def test_soft_assignment_rows_sum_to_one(self, grid, trajectories):
        model = E2DTC(grid, n_clusters=3, embedding_dim=8, hidden_dim=12,
                      max_len=32, rng=np.random.default_rng(2))
        model.fit(trajectories[:8], epochs=1, cluster_epochs=1, batch_size=4,
                  rng=np.random.default_rng(3))
        import repro.nn as nn

        q = model._soft_assignment(nn.Tensor(model.encode(trajectories[:5])))
        np.testing.assert_allclose(q.data.sum(axis=1), 1.0, atol=1e-9)


class TestTrjSR:
    def test_rasterize_counts_points(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [99.0, 99.0]])
        image = rasterize(points, 10, (0, 0, 100, 100))
        assert image.shape == (10, 10)
        assert image[0, 0] == pytest.approx(np.log1p(2))
        assert image[9, 9] == pytest.approx(np.log1p(1))

    def test_embedding_shape(self, trajectories):
        bbox = (1000.0, 1000.0, 3000.0, 3000.0)
        model = TrjSR(bbox, low_res=8, high_res=16, channels=4,
                      rng=np.random.default_rng(0))
        emb = model.encode(trajectories[:4])
        assert emb.shape == (4, 8)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            TrjSR((0, 0, 1, 1), low_res=10, high_res=15)

    def test_training_reduces_loss(self, trajectories):
        bbox = (1000.0, 1000.0, 3000.0, 3000.0)
        model = TrjSR(bbox, low_res=8, high_res=16, channels=4,
                      rng=np.random.default_rng(1))
        losses = model.fit(trajectories, epochs=3, batch_size=8,
                           rng=np.random.default_rng(2))
        assert losses[-1] < losses[0]

    def test_pixel_shuffle_shape(self):
        import repro.nn as nn

        model = TrjSR((0, 0, 1, 1), low_res=8, high_res=16, channels=4,
                      rng=np.random.default_rng(3))
        x = nn.Tensor(np.random.default_rng(0).standard_normal((2, 4, 8, 8)))
        assert model._pixel_shuffle(x).shape == (2, 1, 16, 16)


class TestCSTRM:
    def test_embedding_shape(self, grid, trajectories):
        model = CSTRM(grid, embedding_dim=16, num_heads=4, num_layers=1,
                      max_len=32, rng=np.random.default_rng(0))
        emb = model.encode(trajectories[:4])
        assert emb.shape == (4, 16)

    def test_training_runs(self, grid, trajectories):
        model = CSTRM(grid, embedding_dim=16, num_heads=4, num_layers=1,
                      max_len=32, rng=np.random.default_rng(1))
        losses = model.fit(trajectories, epochs=2, batch_size=8,
                           rng=np.random.default_rng(2))
        assert len(losses) == 2
        assert all(np.isfinite(losses))

    def test_memory_budget_reproduces_germany_oom(self, grid):
        with pytest.raises(MemoryBudgetExceeded):
            CSTRM(grid, embedding_dim=16, max_cell_parameters=10)

    def test_fit_needs_two(self, grid, trajectories):
        model = CSTRM(grid, embedding_dim=16, rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            model.fit(trajectories[:1])


SUPERVISED_FACTORIES = [
    ("neutraj", lambda grid: NeuTraj(grid, hidden_dim=16, max_len=32,
                                     rng=np.random.default_rng(0))),
    ("traj2simvec", lambda grid: Traj2SimVec(hidden_dim=16, max_len=32,
                                             rng=np.random.default_rng(0))),
    ("t3s", lambda grid: T3S(grid, hidden_dim=16, num_heads=4, num_layers=1,
                             max_len=32, rng=np.random.default_rng(0))),
    ("trajgat", lambda grid: TrajGAT(hidden_dim=16, num_heads=4, num_layers=1,
                                     max_len=32, rng=np.random.default_rng(0))),
]


class TestSupervisedApproximators:
    @pytest.mark.parametrize("name,factory", SUPERVISED_FACTORIES)
    def test_embedding_shape(self, name, factory, grid, trajectories):
        model = factory(grid)
        emb = model.encode(trajectories[:4])
        assert emb.shape == (4, model.output_dim)
        assert np.isfinite(emb).all()

    @pytest.mark.parametrize("name,factory", SUPERVISED_FACTORIES)
    def test_fit_reduces_loss(self, name, factory, grid, trajectories):
        model = factory(grid)
        history = model.fit(trajectories, Hausdorff(), epochs=4, pairs=64,
                            batch_size=16, rng=np.random.default_rng(1))
        assert history.losses[-1] < history.losses[0], (
            f"{name}: {history.losses}"
        )

    @pytest.mark.parametrize("name,factory", SUPERVISED_FACTORIES)
    def test_distance_matrix_scaled(self, name, factory, grid, trajectories):
        model = factory(grid)
        model.fit(trajectories, Hausdorff(), epochs=1, pairs=32,
                  batch_size=16, rng=np.random.default_rng(2))
        matrix = model.distance_matrix(trajectories[:3], trajectories[:5])
        assert matrix.shape == (3, 5)
        assert (matrix >= 0).all()

    def test_fit_needs_two(self, grid, trajectories):
        model = Traj2SimVec(hidden_dim=16, rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            model.fit(trajectories[:1], Hausdorff())

    def test_neutraj_memory_updates_in_training_only(self, grid, trajectories):
        model = NeuTraj(grid, hidden_dim=16, max_len=32,
                        rng=np.random.default_rng(4))
        model.encode(trajectories[:4])  # eval mode: no memory writes
        np.testing.assert_allclose(model.cell_memory, 0.0)
        model.train()
        model.embed_batch(trajectories[:4])
        assert np.abs(model.cell_memory).sum() > 0

    def test_trajgat_bias_scale_learns(self, grid, trajectories):
        model = TrajGAT(hidden_dim=16, num_heads=4, num_layers=1, max_len=32,
                        rng=np.random.default_rng(5))
        model.fit(trajectories, Hausdorff(), epochs=1, pairs=32, batch_size=16,
                  rng=np.random.default_rng(6))
        scales = [float(layer.bias_scale.data) for layer in model.layers]
        assert all(np.isfinite(scales))
