"""``repro lint`` CLI: exit codes, JSON contract, rule filtering, and the
dogfood gate — the repo's own src/ tree must lint clean."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.lint_cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD = """
    import threading

    def start(target):
        return threading.Thread(target=target)
"""
GOOD = """
    import threading

    def start(target):
        return threading.Thread(target=target, daemon=True)
"""


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(textwrap.dedent(BAD))
    return path


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.py"
    path.write_text(textwrap.dedent(GOOD))
    return path


def test_exit_zero_on_clean(good_file, capsys):
    assert main([str(good_file)]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_on_findings(bad_file, capsys):
    assert main([str(bad_file)]) == 1
    out = capsys.readouterr().out
    assert "C203" in out and "fix:" in out


def test_exit_two_on_unknown_rule(bad_file, capsys):
    assert main([str(bad_file), "--rules", "C999"]) == 2


def test_exit_two_on_missing_path(tmp_path):
    assert main([str(tmp_path / "nope")]) == 2


def test_json_contract(bad_file, capsys):
    assert main([str(bad_file), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert payload["files"] == 1
    finding = payload["findings"][0]
    assert {"path", "line", "col", "rule", "severity",
            "message", "fix_hint"} <= set(finding)
    assert finding["rule"] == "C203"


def test_rules_filter(bad_file, capsys):
    assert main([str(bad_file), "--rules", "R304"]) == 0
    assert main([str(bad_file), "--rules", "C203,R304"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("C201", "C202", "C203", "C204", "R301", "R306",
                    "R307", "S001", "S002", "E001"):
        assert rule_id in out


def test_repro_cli_exposes_lint(bad_file):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad_file),
         "--format", "json"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert json.loads(proc.stdout)["findings"]


def test_dogfood_repo_src_is_clean():
    """The gate the Makefile/CI enforce, asserted from the suite too:
    src/ lints clean and every suppression carries a reason."""
    report = lint_paths([str(REPO_ROOT / "src")],
                        relative_to=str(REPO_ROOT))
    assert report.ok, [f"{f.location} {f.rule} {f.message}"
                       for f in report.findings]
    assert report.suppressions > 0  # the by-design cases are documented
