"""The static lock-acquisition graph: C201 cycle detection, the edge
model (nested with, self-call closure, typed attributes), and the event
walker the other concurrency rules ride on."""

import ast
import textwrap

from repro.analysis.lockgraph import (
    build_lock_model,
    collect_class_locks,
    collect_module_locks,
    iter_lock_events,
)
from repro.analysis.core import FileContext


def _ctx(source, name="snippet.py"):
    return FileContext(name, textwrap.dedent(source))


ABBA_DIRECT = """
    import threading

    class Service:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def one(self):
            with self._a:
                with self._b:
                    pass

        def two(self):
            with self._b:
                with self._a:
                    pass
"""

CONSISTENT_ORDER = """
    import threading

    class Service:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def one(self):
            with self._a:
                with self._b:
                    pass

        def two(self):
            with self._a:
                with self._b:
                    pass
"""

ABBA_VIA_SELF_CALL = """
    import threading

    class Service:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def _grab_a(self):
            with self._a:
                return 1

        def one(self):
            with self._a:
                with self._b:
                    pass

        def two(self):
            with self._b:
                return self._grab_a()
"""

ABBA_VIA_TYPED_ATTR = """
    import threading

    class Inner:
        def __init__(self):
            self._inner_lock = threading.Lock()
            self._outer = None

        def poke(self):
            with self._inner_lock:
                pass

        def call_back(self, outer):
            with self._inner_lock:
                outer.refresh()

    class Outer:
        def __init__(self):
            self._outer_lock = threading.Lock()
            self._child = Inner()

        def refresh(self):
            with self._outer_lock:
                pass

        def use(self):
            with self._outer_lock:
                self._child.poke()
"""


def test_direct_abba_cycle_is_flagged(lint_rules):
    assert "C201" in lint_rules(ABBA_DIRECT)


def test_consistent_order_is_quiet(lint_rules):
    assert "C201" not in lint_rules(CONSISTENT_ORDER)


def test_indirect_cycle_through_self_call_is_flagged(lint_rules):
    assert "C201" in lint_rules(ABBA_VIA_SELF_CALL)


def test_cycle_finding_names_both_locks(lint_source):
    report = lint_source(ABBA_DIRECT)
    finding = next(f for f in report.findings if f.rule == "C201")
    assert "._a" in finding.message and "._b" in finding.message


def test_cross_class_edges_via_typed_attributes():
    # Outer.use holds _outer_lock and calls into Inner (which takes
    # _inner_lock): the model must carry the edge across classes.
    model = build_lock_model([_ctx(ABBA_VIA_TYPED_ATTR)])
    edges = model.edge_list()
    assert ("snippet:Outer._outer_lock", "snippet:Inner._inner_lock") in edges


def test_reentrant_same_lock_nesting_is_not_a_cycle(lint_rules):
    fired = lint_rules("""
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    with self._lock:
                        pass
    """)
    assert "C201" not in fired


def test_collect_class_locks_kinds():
    tree = ast.parse(textwrap.dedent("""
        import threading

        class S:
            def __init__(self):
                self._lock = threading.Lock()
                self._rlock = threading.RLock()
                self._cond = threading.Condition()
                self._data = {}
    """))
    class_node = tree.body[1]
    locks = collect_class_locks(class_node)
    assert locks == {"_lock": "Lock", "_rlock": "RLock",
                     "_cond": "Condition"}


def test_collect_module_locks():
    tree = ast.parse(textwrap.dedent("""
        import threading
        GUARD = threading.Lock()
        VALUE = 3
    """))
    assert collect_module_locks(tree) == {"GUARD": "Lock"}


def test_event_walker_resets_held_state_in_nested_defs():
    source = textwrap.dedent("""
        import threading

        class S:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self):
                with self._lock:
                    def worker():
                        self._sock.recv(1)
                    return worker
    """)
    tree = ast.parse(source)
    method = tree.body[1].body[1]
    events = iter_lock_events(method, {"_lock": "Lock"})
    recv_calls = [
        e for e in events
        if e.kind == "call"
        and isinstance(e.node.func, ast.Attribute)
        and e.node.func.attr == "recv"
    ]
    assert recv_calls and all(not e.held for e in recv_calls)
