"""Runtime lock-order sanitizer: deterministic ABBA detection, RLock and
Condition protocol compatibility, and validation against the real
serving stack."""

import threading

import pytest

from repro.analysis import (
    LockOrderError,
    disable_lock_sanitizer,
    enable_lock_sanitizer,
    lock_graph_snapshot,
    reset_lock_graph,
    sanitizer_active,
    sanitizer_enabled,
)


@pytest.fixture
def sanitized():
    """Enable the sanitizer for one test, restoring the prior state.

    When the suite already runs under REPRO_LOCK_SANITIZER=1 (the slow
    lane), the sanitizer stays enabled afterwards — only the observed
    graph is cleared.
    """
    was_enabled = sanitizer_enabled()
    enable_lock_sanitizer()
    reset_lock_graph()
    try:
        yield
    finally:
        reset_lock_graph()
        if not was_enabled:
            disable_lock_sanitizer()


def test_enable_disable_roundtrip():
    was_enabled = sanitizer_enabled()
    enable_lock_sanitizer()
    assert sanitizer_enabled() and sanitizer_active()
    lock = threading.Lock()
    assert "Sanitized" in repr(lock)
    if not was_enabled:
        disable_lock_sanitizer()
        assert not sanitizer_enabled()
        # the real factory is back...
        assert "Sanitized" not in repr(threading.Lock())
        # ...and locks created while enabled keep working
        with lock:
            pass


def test_seeded_abba_deadlock_is_detected_deterministically(sanitized):
    """The canonical ABBA fixture: thread 1 teaches the graph a->b, the
    main thread then tries b->a and must be stopped BEFORE acquiring —
    no timing, no actual deadlock."""
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    seeded = threading.Event()

    def seed_order():
        with lock_a:
            with lock_b:
                pass
        seeded.set()

    worker = threading.Thread(target=seed_order, daemon=True)
    worker.start()
    assert seeded.wait(5.0)
    worker.join(5.0)

    with lock_b:
        with pytest.raises(LockOrderError) as excinfo:
            lock_a.acquire()
    assert "cycle" in str(excinfo.value)
    # the refused acquisition must not have left lock_a held
    assert lock_a.acquire(timeout=1.0)
    lock_a.release()


def test_single_thread_inversion_is_also_caught(sanitized):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with pytest.raises(LockOrderError):
            with lock_a:
                pass


def test_consistent_order_never_raises(sanitized):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    snapshot = lock_graph_snapshot()
    assert any(snapshot.values())  # the a->b edge was observed


def test_lock_self_deadlock_is_reported(sanitized):
    lock = threading.Lock()
    with lock:
        with pytest.raises(LockOrderError) as excinfo:
            lock.acquire()
    assert "self-deadlock" in str(excinfo.value)


def test_rlock_reentrancy_is_fine(sanitized):
    rlock = threading.RLock()
    with rlock:
        with rlock:
            assert rlock._is_owned()


def test_condition_wait_does_not_false_positive(sanitized):
    # A bare Condition() creates its RLock through the patched factory;
    # wait() must release/reacquire through the wrapper's Condition
    # protocol without inventing ordering edges.
    condition = threading.Condition()
    results = []

    def waiter():
        with condition:
            results.append(condition.wait(0.2))

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    thread.join(5.0)
    assert results == [False]  # timed out, no LockOrderError raised

    def notifier():
        with condition:
            condition.notify_all()

    woken = []

    def waiter2():
        with condition:
            woken.append(condition.wait(5.0))

    thread = threading.Thread(target=waiter2, daemon=True)
    thread.start()
    import time

    time.sleep(0.05)
    notifier()
    thread.join(5.0)
    assert woken == [True]


def test_queue_roundtrip_under_sanitizer(sanitized):
    # queue.Queue builds its Conditions over a patched Lock: the whole
    # protocol (acquire/release/_release_save/_acquire_restore/_is_owned)
    # must hold up.
    import queue

    channel = queue.Queue()

    def producer():
        for n in range(10):
            channel.put(n)

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    got = [channel.get(timeout=5.0) for _ in range(10)]
    thread.join(5.0)
    assert got == list(range(10))


def test_nonblocking_acquire_never_raises_order_error(sanitized):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        # non-blocking acquisition cannot deadlock; it must not raise
        got = lock_a.acquire(blocking=False)
        assert got
        lock_a.release()


def test_serving_stack_has_no_lock_order_cycles(sanitized):
    """Validation against reality: run the sharded service + query queue
    under the sanitizer with concurrent stats/knn/add traffic. A cycle
    anywhere in the serving layer's locking would raise here."""
    np = pytest.importorskip("numpy")
    from repro.api import QueryQueue, ShardedSimilarityService, get_backend

    rng = np.random.default_rng(7)
    trajectories = [rng.normal(size=(8, 2)).cumsum(axis=0) for _ in range(12)]
    backend = get_backend("hausdorff")
    errors = []

    with ShardedSimilarityService(backend=backend, num_workers=2,
                                  start_method="fork") as service:
        # the stack's own locks were created under the patched factories
        assert "Sanitized" in repr(service._rpc_lock)
        service.add(trajectories)
        with QueryQueue(service, max_batch=8, max_wait=0.002) as queue:

            def hammer(fn):
                try:
                    for _ in range(5):
                        fn()
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [
                threading.Thread(
                    target=hammer,
                    args=(lambda: queue.knn(trajectories[0], k=3),),
                    daemon=True),
                threading.Thread(
                    target=hammer, args=(service.stats,), daemon=True),
                threading.Thread(
                    target=hammer,
                    args=(lambda: service.add(
                        [rng.normal(size=(6, 2)).cumsum(axis=0)]),),
                    daemon=True),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)

    assert not errors, errors
    # A healthy stack holds its locks one at a time (stats/add snapshot
    # bookkeeping under a dedicated state lock, RPC under the rpc lock,
    # never nested), so the observed order graph stays acyclic — and in
    # fact edge-free. Reaching here without LockOrderError is the check.
    assert lock_graph_snapshot() is not None


def test_sanitized_locks_support_stdlib_fork_hooks(sanitized):
    """``concurrent.futures.thread`` registers ``_at_fork_reinit`` of a
    module-level lock at import time; the wrappers must expose it or
    importing ThreadPoolExecutor under the sanitizer breaks."""
    import threading

    for lock in (threading.Lock(), threading.RLock()):
        assert "Sanitized" in repr(lock)
        lock._at_fork_reinit()  # must exist and leave the lock usable
        with lock:
            pass

    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=2) as pool:
        assert sorted(pool.map(lambda x: x * x, range(4))) == [0, 1, 4, 9]
