"""Golden-file tests: every shipped rule fires on a known-bad snippet and
stays quiet on the fixed version, and the suppression machinery is itself
linted (reason required, stale suppressions flagged)."""

import pytest

from repro.analysis import all_rules, lint_paths, rule_catalog

# ----------------------------------------------------------------------
# bad snippet -> rule id; fixed snippet -> quiet. One pair per rule.
# ----------------------------------------------------------------------
C202_BAD = """
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def read(self):
            with self._lock:
                return self._count

        def bump(self):
            self._count += 1
"""
C202_GOOD = """
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def read(self):
            with self._lock:
                return self._count

        def bump(self):
            with self._lock:
                self._count += 1
"""

C202_MUTATOR_BAD = """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def snapshot(self):
            with self._lock:
                return list(self._items)

        def push(self, item):
            self._items.append(item)
"""

C203_BAD = """
    import threading

    def start(target):
        worker = threading.Thread(target=target)
        worker.start()
        return worker
"""
C203_GOOD = """
    import threading

    def start(target):
        worker = threading.Thread(target=target, daemon=True)
        worker.start()
        return worker
"""

C204_BAD = """
    import threading

    class Client:
        def __init__(self, sock):
            self._lock = threading.Lock()
            self._sock = sock

        def fetch(self):
            with self._lock:
                return self._sock.recv(1024)
"""
C204_GOOD = """
    import threading

    class Client:
        def __init__(self, sock):
            self._lock = threading.Lock()
            self._sock = sock
            self._last = None

        def fetch(self):
            data = self._sock.recv(1024)
            with self._lock:
                self._last = data
            return data
"""

R301_BAD = """
    import pickle

    def thaw(blob):
        return pickle.loads(blob)
"""
R301_GOOD = """
    import json

    def thaw(blob):
        return json.loads(blob)
"""

R302_BAD = """
    def make(name):
        if name == "trajcl":
            return object()
        elif name == "hausdorff":
            return object()
        raise KeyError(name)
"""
R302_GOOD = """
    from repro.api import get_backend

    def make(name):
        return get_backend(name)
"""

R303_BAD = """
    def collect(item, seen=[]):
        seen.append(item)
        return seen
"""
R303_GOOD = """
    def collect(item, seen=None):
        if seen is None:
            seen = []
        seen.append(item)
        return seen
"""

R304_BAD = """
    def guarded(fn):
        try:
            return fn()
        except:
            return None
"""
R304_GOOD = """
    def guarded(fn):
        try:
            return fn()
        except Exception:
            return None
"""

R305_BAD = """
    import numpy as np

    def normalize(embeddings):
        return np.asarray(embeddings)
"""
R305_GOOD = """
    import numpy as np

    def normalize(embeddings):
        return np.asarray(embeddings, dtype=np.float32)
"""

R306_BAD = """
    import numpy as np

    def save(path, arrays):
        np.savez_compressed(path, **arrays)
"""
R306_GOOD = """
    import numpy as np

    def save(path, arrays):
        np.savez_compressed(path, format_version=np.array(1), **arrays)
"""

R307_BAD = """
    import pickle
    import numpy as np

    def freeze(array):
        return pickle.dumps(array)
"""
R307_GOOD = """
    import pickle

    def _encode_array_fallback(array):
        return pickle.dumps(array)
"""

R308_BAD = """
    import time

    def fetch(client):
        for _ in range(5):
            try:
                return client.get()
            except ConnectionError:
                time.sleep(0.1)
"""
R308_GOOD = """
    import time

    def fetch(client):
        delay = 0.1
        for _ in range(5):
            try:
                return client.get()
            except ConnectionError:
                time.sleep(delay)
                delay *= 2
"""
# A polling loop sleeps a constant but retries nothing: not a finding.
R308_POLL = """
    import time

    def wait_ready(path):
        while not path.exists():
            time.sleep(0.1)
"""

# R309 is scoped to the quantized-index modules (quant/pq/hnsw); these
# snippets lint under filename="quant.py" in their dedicated tests below.
R309_BAD = """
    import numpy as np

    def adc_scan(codes, lut):
        out = np.zeros((len(codes),))
        for j in range(codes.shape[1]):
            out += lut[j, codes[:, j]].astype(np.float64)
        return out
"""
R309_GOOD = """
    import numpy as np

    def adc_scan(codes, lut):
        out = np.zeros((len(codes),), dtype=np.float32)
        for j in range(codes.shape[1]):
            out += lut[j, codes[:, j]]
        return out
"""

GOLDEN = [
    ("C202", C202_BAD, C202_GOOD),
    ("C202", C202_MUTATOR_BAD, None),
    ("C203", C203_BAD, C203_GOOD),
    ("C204", C204_BAD, C204_GOOD),
    ("R301", R301_BAD, R301_GOOD),
    ("R302", R302_BAD, R302_GOOD),
    ("R303", R303_BAD, R303_GOOD),
    ("R304", R304_BAD, R304_GOOD),
    ("R305", R305_BAD, R305_GOOD),
    ("R306", R306_BAD, R306_GOOD),
    ("R307", R307_BAD, R307_GOOD),
    ("R308", R308_BAD, R308_GOOD),
    ("R308", R308_BAD, R308_POLL),
]


@pytest.mark.parametrize(
    "rule,bad,good", GOLDEN,
    ids=[f"{rule}-{n}" for n, (rule, _, _) in enumerate(GOLDEN)],
)
def test_rule_fires_on_bad_and_not_on_good(lint_rules, rule, bad, good):
    assert rule in lint_rules(bad)
    if good is not None:
        assert rule not in lint_rules(good)


def test_parse_error_is_a_finding(lint_rules):
    assert lint_rules("def broken(:\n") == {"E001"}


# ----------------------------------------------------------------------
# Rule-specific edges
# ----------------------------------------------------------------------
def test_c202_ignores_never_locked_attributes(lint_rules):
    # An attribute never touched under a lock is single-threaded by
    # convention; flagging it would bury the real races in noise.
    fired = lint_rules("""
        import threading

        class Loose:
            def __init__(self):
                self._lock = threading.Lock()
                self._scratch = 0

            def work(self):
                self._scratch += 1
    """)
    assert "C202" not in fired


def test_c203_kwargs_passthrough_is_not_flagged(lint_rules):
    fired = lint_rules("""
        import threading

        def start(**kwargs):
            return threading.Thread(**kwargs)
    """)
    assert "C203" not in fired


def test_c204_condition_wait_on_held_object_is_exempt(lint_rules):
    fired = lint_rules("""
        import threading

        class Waiter:
            def __init__(self):
                self._condition = threading.Condition()
                self._items = []

            def take(self):
                with self._condition:
                    while not self._items:
                        self._condition.wait(0.1)
                    return self._items.pop()
    """)
    assert "C204" not in fired


def test_c204_queue_get_and_thread_join_fire_but_str_join_does_not(lint_source):
    report = lint_source("""
        import threading

        class Pump:
            def __init__(self, queue, thread):
                self._lock = threading.Lock()
                self._queue = queue
                self._thread = thread

            def drain(self):
                with self._lock:
                    item = self._queue.get()
                    self._thread.join()
                    return ", ".join([str(item)])
    """)
    c204 = [f for f in report.findings if f.rule == "C204"]
    # queue.get and thread.join block; ", ".join is string plumbing.
    assert len(c204) == 2


def test_c204_ignores_asyncio_locks(lint_rules):
    fired = lint_rules("""
        import asyncio

        class AsyncClient:
            def __init__(self, reader):
                self._lock = asyncio.Lock()
                self._reader = reader

            async def fetch(self):
                async with self._lock:
                    return await self._reader.readexactly(8)
    """)
    assert "C204" not in fired


def test_r301_allowed_inside_transport_module(lint_rules):
    assert "R301" not in lint_rules(R301_BAD, filename="transport.py")


def test_r301_flags_allow_pickle_numpy_load(lint_rules):
    fired = lint_rules("""
        import numpy as np

        def thaw(path):
            return np.load(path, allow_pickle=True)
    """)
    assert "R301" in fired


def test_r307_fires_even_inside_transport_module(lint_rules):
    # R301's module allowance does NOT extend to R307: arrays must go
    # through the wire codec even inside the audited pickle boundary.
    assert "R307" in lint_rules(R307_BAD, filename="transport.py")


def test_r307_ignores_non_array_payloads(lint_rules):
    fired = lint_rules("""
        import pickle

        def freeze(message):
            return pickle.dumps(message)
    """)
    assert "R307" not in fired


def test_r307_flags_inline_numpy_constructors(lint_rules):
    fired = lint_rules("""
        import pickle
        import numpy as np

        def freeze(n):
            return pickle.dumps(np.zeros(n))
    """)
    assert "R307" in fired


def test_r302_single_comparison_is_not_dispatch(lint_rules):
    fired = lint_rules("""
        def is_default(name):
            if name == "trajcl":
                return True
            return False
    """)
    assert "R302" not in fired


def test_r309_fires_only_in_quantized_modules(lint_rules):
    assert "R309" in lint_rules(R309_BAD, filename="quant.py")
    assert "R309" not in lint_rules(R309_GOOD, filename="quant.py")
    # Same code outside quant/pq/hnsw is out of scope.
    assert "R309" not in lint_rules(R309_BAD)


def test_r309_ignores_training_code(lint_rules):
    # train() is not a scan path: k-means over float64 is deliberate there.
    fired = lint_rules("""
        import numpy as np

        def train(sample):
            return sample.astype(np.float64)
    """, filename="pq.py")
    assert "R309" not in fired


def test_r309_flags_dtype_kwarg_and_astype_float(lint_rules):
    fired = lint_rules("""
        import numpy as np

        def search_layer(query, data):
            acc = np.empty(len(data), dtype="float64")
            return acc + data.astype(float)
    """, filename="hnsw.py")
    assert "R309" in fired


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_with_reason_silences_the_finding(lint_rules):
    fired = lint_rules("""
        import threading

        def start(target):
            return threading.Thread(target=target)  # repro: allow[C203] lifetime owned by caller
    """)
    assert fired == set()


def test_standalone_suppression_covers_next_code_line(lint_rules):
    fired = lint_rules("""
        import threading

        def start(target):
            # repro: allow[C203] lifetime owned by caller
            return threading.Thread(target=target)
    """)
    assert fired == set()


def test_suppression_without_reason_is_its_own_finding(lint_rules):
    fired = lint_rules("""
        import threading

        def start(target):
            return threading.Thread(target=target)  # repro: allow[C203]
    """)
    assert fired == {"S001"}


def test_stale_suppression_is_flagged_on_full_runs_only(lint_rules):
    source = """
        X = 1  # repro: allow[C203] nothing here blocks
    """
    assert lint_rules(source) == {"S002"}
    assert lint_rules(source, rules=["C203"]) == set()


def test_suppression_matches_only_named_rules(lint_rules):
    fired = lint_rules("""
        import threading

        def start(target):
            return threading.Thread(target=target)  # repro: allow[C204] wrong rule id
    """)
    assert "C203" in fired  # the finding survives
    assert "S002" in fired  # and the suppression is reported stale


# ----------------------------------------------------------------------
# Catalog invariants
# ----------------------------------------------------------------------
def test_catalog_has_at_least_ten_rules_with_hints():
    rules = all_rules()
    assert len(rules) >= 10
    assert len({rule.id for rule in rules}) == len(rules)
    for rule in rules:
        assert rule.severity in ("error", "warning")
        assert rule.summary
    assert set(rule_catalog()) == {rule.id for rule in rules}
