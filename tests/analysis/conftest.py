"""Shared fixture: lint a source snippet through the real runner."""

import textwrap

import pytest

from repro.analysis import lint_paths


@pytest.fixture
def lint_source(tmp_path):
    """Write ``source`` to a temp file and lint it; returns the report."""

    def run(source, filename="snippet.py", rules=None):
        path = tmp_path / filename
        path.write_text(textwrap.dedent(source))
        return lint_paths([str(path)], rules=rules)

    return run


@pytest.fixture
def lint_rules(lint_source):
    """Like ``lint_source`` but returns just the set of fired rule ids."""

    def run(source, filename="snippet.py", rules=None):
        report = lint_source(source, filename=filename, rules=rules)
        return {finding.rule for finding in report.findings}

    return run
