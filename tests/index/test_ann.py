"""Tests for the compressed-residency ANN structures: product
quantization (flat and IVF-PQ residual), int8 scalar quantization, and
the HNSW graph — recall floors against the exact scan, determinism under
a fixed seed, snapshot-grade state round-trips, memory accounting, and
the empty/one-vector edges."""

import numpy as np
import pytest

from repro.index import (
    BruteForceIndex,
    HNSWIndex,
    Int8FlatIndex,
    PQIndex,
    ProductQuantizer,
    ScalarQuantizer,
    topk_rows,
)


def clustered(count, dim=32, rank=6, clusters=24, seed=0):
    """Low-rank clustered gaussians — the distribution learned embeddings
    live on, and the one PQ codebooks are meant to exploit."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, dim))
    mix = rng.normal(size=(rank, dim))
    assign = rng.integers(0, clusters, size=count)
    return centers[assign] + (rng.normal(size=(count, rank)) @ mix) * 0.5


def recall(truth, found):
    hits = sum(
        len(set(t[t >= 0]) & set(f[f >= 0])) for t, f in zip(truth, found)
    )
    return hits / float(truth.shape[0] * truth.shape[1])


@pytest.fixture(scope="module")
def corpus():
    pool = clustered(1550)
    return pool[:1500], pool[1500:]


@pytest.fixture(scope="module")
def ground_truth(corpus):
    data, queries = corpus
    exact = BruteForceIndex(data.shape[1], metric="l1")
    exact.add(data)
    return exact.search(queries, 10)[1]


class TestTopkRows:
    def test_ranks_by_distance_then_id(self):
        distances = np.array([[3.0, 1.0, 1.0, 2.0]], dtype=np.float32)
        got_d, got_i = topk_rows(distances, 3)
        np.testing.assert_array_equal(got_i, [[1, 2, 3]])
        np.testing.assert_allclose(got_d, [[1.0, 1.0, 2.0]])

    def test_pads_short_rows(self):
        got_d, got_i = topk_rows(np.array([[5.0, 4.0]]), 4)
        np.testing.assert_array_equal(got_i, [[1, 0, -1, -1]])
        assert np.isinf(got_d[0, 2:]).all()


class TestScalarQuantizer:
    def test_round_trip_error_bounded_by_step(self):
        data = clustered(400, seed=1)
        quantizer = ScalarQuantizer(data.shape[1])
        quantizer.train(data)
        decoded = quantizer.decode(quantizer.encode(data))
        step = (data.max(axis=0) - data.min(axis=0)) / 255.0
        assert np.all(np.abs(decoded - data) <= step + 1e-6)

    def test_constant_dimension_survives(self):
        data = np.ones((32, 4))
        quantizer = ScalarQuantizer(4)
        quantizer.train(data)
        np.testing.assert_allclose(
            quantizer.decode(quantizer.encode(data)), data, atol=1e-6)


class TestRecallFloors:
    def test_pq_recall_at_10(self, corpus, ground_truth):
        data, queries = corpus
        index = PQIndex(data.shape[1], n_subspaces=16)
        index.train(data, rng=np.random.default_rng(0))
        index.add(data)
        assert recall(ground_truth, index.search(queries, 10)[1]) >= 0.8

    def test_hnsw_recall_at_10_at_default_ef(self, corpus, ground_truth):
        data, queries = corpus
        index = HNSWIndex(data.shape[1])
        index.add(data)
        assert recall(ground_truth, index.search(queries, 10)[1]) >= 0.9

    def test_int8_recall_at_10(self, corpus, ground_truth):
        data, queries = corpus
        index = Int8FlatIndex(data.shape[1])
        index.train(data)
        index.add(data)
        assert recall(ground_truth, index.search(queries, 10)[1]) >= 0.9

    def test_pq_refine_improves_recall(self, corpus, ground_truth):
        data, queries = corpus
        rough = PQIndex(data.shape[1], n_subspaces=8)
        rough.train(data, rng=np.random.default_rng(0))
        rough.add(data)
        refined = PQIndex(data.shape[1], n_subspaces=8, refine_factor=8,
                          refine_dtype="float32")
        refined.train(data, rng=np.random.default_rng(0))
        refined.add(data)
        base = recall(ground_truth, rough.search(queries, 10)[1])
        better = recall(ground_truth, refined.search(queries, 10)[1])
        assert better > base
        assert better >= 0.9

    def test_ivf_pq_residual_variant_answers(self, corpus, ground_truth):
        data, queries = corpus
        index = PQIndex(data.shape[1], n_subspaces=16, coarse_lists=8,
                        n_probe=4)
        index.train(data, rng=np.random.default_rng(0))
        index.add(data)
        assert recall(ground_truth, index.search(queries, 10)[1]) >= 0.6
        # Probing every list recovers the flat-PQ recall level.
        assert recall(
            ground_truth, index.search(queries, 10, n_probe=8)[1]) >= 0.7


class TestDeterminism:
    def test_pq_fixed_seed_reproduces(self, corpus):
        data, queries = corpus
        runs = []
        for _ in range(2):
            index = PQIndex(data.shape[1], n_subspaces=8)
            index.train(data, rng=np.random.default_rng(7))
            index.add(data)
            runs.append(index.search(queries, 5))
        assert runs[0][0].tobytes() == runs[1][0].tobytes()
        assert runs[0][1].tobytes() == runs[1][1].tobytes()

    def test_hnsw_fixed_seed_reproduces(self, corpus):
        data, queries = corpus
        runs = []
        for _ in range(2):
            index = HNSWIndex(data.shape[1], seed=7)
            index.add(data[:400])
            runs.append(index.search(queries, 5))
        assert runs[0][0].tobytes() == runs[1][0].tobytes()
        assert runs[0][1].tobytes() == runs[1][1].tobytes()


class TestProductQuantizerShapes:
    def test_uneven_dim_is_padded(self):
        # dim 10 over 4 subspaces -> sub_dim 3 with 2 padded zeros; the
        # padding must be distance-neutral.
        data = clustered(300, dim=10, seed=2)
        pq = ProductQuantizer(10, n_subspaces=4, n_centroids=32)
        pq.train(data, rng=np.random.default_rng(0))
        assert pq.codebooks.shape == (4, 32, 3)
        codes = pq.encode(data)
        assert codes.shape == (300, 4) and codes.dtype == np.uint8
        decoded = pq.decode(codes)
        assert decoded.shape == (300, 10)
        assert np.abs(decoded - data).mean() < np.abs(data).mean()

    def test_subspaces_clamped_to_dim(self):
        pq = ProductQuantizer(3, n_subspaces=8)
        assert pq.n_subspaces == 3

    def test_adc_matches_decoded_distances(self):
        data = clustered(200, dim=16, seed=3)
        pq = ProductQuantizer(16, n_subspaces=4, n_centroids=16, metric="l1")
        pq.train(data, rng=np.random.default_rng(0))
        codes = pq.encode(data)
        queries = data[:5]
        adc = pq.adc(pq.lut(queries), codes)
        decoded = pq.decode(codes)
        direct = np.abs(queries[:, None] - decoded[None]).sum(axis=2)
        np.testing.assert_allclose(adc, direct, rtol=1e-4, atol=1e-4)


class TestEdges:
    @pytest.mark.parametrize("factory", [
        lambda: PQIndex(8, n_subspaces=4),
        lambda: Int8FlatIndex(8),
        lambda: HNSWIndex(8),
    ])
    def test_empty_search_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().search(np.zeros((1, 8)), 1)

    def test_one_vector_hnsw(self):
        index = HNSWIndex(4)
        index.add(np.arange(4.0))
        distances, ids = index.search(np.zeros((1, 4)), 3)
        assert ids[0, 0] == 0
        np.testing.assert_array_equal(ids[0, 1:], [-1, -1])
        assert np.isinf(distances[0, 1:]).all()

    def test_one_vector_pq(self):
        data = np.arange(8.0).reshape(1, 8)
        index = PQIndex(8, n_subspaces=4)
        index.train(data, rng=np.random.default_rng(0))
        index.add(data)
        distances, ids = index.search(data, 2)
        assert ids[0, 0] == 0 and ids[0, 1] == -1

    def test_add_before_train_raises(self):
        with pytest.raises(RuntimeError):
            Int8FlatIndex(4).add(np.zeros((2, 4)))


class TestIncrementalAdd:
    def test_pq_encodes_new_vectors_against_frozen_codebooks(self, corpus):
        data, _ = corpus
        index = PQIndex(data.shape[1], n_subspaces=16)
        index.train(data[:1000], rng=np.random.default_rng(0))
        index.add(data[:1000])
        before = index.pq.codebooks.tobytes()
        index.add(data[1000:])
        assert index.pq.codebooks.tobytes() == before  # no retrain
        assert len(index) == len(data)
        _, ids = index.search(data[1200:1201], 5)
        assert 1200 in ids[0]

    def test_int8_clips_out_of_range_adds_to_trained_grid(self):
        data = clustered(500, dim=8, seed=4)
        index = Int8FlatIndex(8)
        index.train(data)
        index.add(data)
        index.add(data[:1] + 1000.0)  # far outside the trained range
        _, ids = index.search(data[:1] + 1000.0, 1)
        assert ids[0, 0] == len(data)  # still nearest to itself


class TestMemoryAndState:
    def test_pq_memory_well_under_float32(self, corpus):
        data, _ = corpus
        # 64 centroids: at this corpus size the fixed codebook cost must
        # not drown the 16 B/vector codes (vs 128 B float32 rows).
        index = PQIndex(data.shape[1], n_subspaces=16, n_centroids=64)
        index.train(data, rng=np.random.default_rng(0))
        index.add(data)
        assert index.memory_bytes < data.astype(np.float32).nbytes / 4

    def test_int8_memory_quarter_of_float32(self, corpus):
        data, _ = corpus
        index = Int8FlatIndex(data.shape[1])
        index.train(data)
        index.add(data)
        float32 = data.astype(np.float32).nbytes
        assert float32 / 4.5 < index.memory_bytes < float32 / 3.5

    def test_hnsw_graph_export_import_is_bit_identical(self, corpus):
        data, queries = corpus
        index = HNSWIndex(data.shape[1], seed=3)
        index.add(data[:500])
        meta, arrays = index.export_graph()
        clone = HNSWIndex(data.shape[1], seed=3)
        clone.import_graph(meta, arrays)
        want_d, want_i = index.search(queries, 5)
        got_d, got_i = clone.search(queries, 5)
        assert want_d.tobytes() == got_d.tobytes()
        assert want_i.tobytes() == got_i.tobytes()

    def test_hnsw_counts_fewer_evaluations_than_bruteforce(self, corpus):
        data, queries = corpus
        index = HNSWIndex(data.shape[1])
        index.add(data)
        before = index.distance_evaluations
        index.search(queries, 10)
        per_query = (index.distance_evaluations - before) / len(queries)
        assert per_query < len(data) / 2
