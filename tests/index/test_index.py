"""Tests for brute-force / IVF vector indexes and the segment Hausdorff index."""

import numpy as np
import pytest

from repro.index import (
    BruteForceIndex,
    IVFFlatIndex,
    SegmentHausdorffIndex,
    kmeans,
    pairwise_distances,
)
from repro.measures import hausdorff_distance

RNG = np.random.default_rng(97)


class TestPairwiseDistances:
    def test_l1_matches_direct(self):
        q, d = RNG.standard_normal((5, 8)), RNG.standard_normal((7, 8))
        expected = np.abs(q[:, None] - d[None]).sum(axis=2)
        np.testing.assert_allclose(pairwise_distances(q, d, "l1"), expected)

    def test_l2_matches_direct(self):
        q, d = RNG.standard_normal((5, 8)), RNG.standard_normal((7, 8))
        expected = np.linalg.norm(q[:, None] - d[None], axis=2)
        np.testing.assert_allclose(pairwise_distances(q, d, "l2"), expected, atol=1e-9)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((1, 2)), np.zeros((1, 2)), "cosine")


class TestKMeans:
    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(0)
        data = np.concatenate([
            rng.standard_normal((50, 2)) + offset
            for offset in [(0, 0), (20, 0), (0, 20)]
        ])
        centers, assignment = kmeans(data, 3, rng=rng)
        assert centers.shape == (3, 2)
        # Every cluster should be nearly pure.
        for group in range(3):
            labels = assignment[group * 50:(group + 1) * 50]
            counts = np.bincount(labels, minlength=3)
            assert counts.max() >= 48

    def test_k_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 6)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0)

    def test_duplicate_points_handled(self):
        data = np.ones((20, 3))
        centers, assignment = kmeans(data, 3, rng=np.random.default_rng(1))
        assert np.isfinite(centers).all()


class TestBruteForceIndex:
    def test_exact_nearest(self):
        index = BruteForceIndex(4, metric="l1")
        data = RNG.standard_normal((50, 4))
        index.add(data)
        query = data[17] + 0.001
        distances, indices = index.search(query, k=1)
        assert indices[0, 0] == 17

    def test_sorted_results(self):
        index = BruteForceIndex(4)
        index.add(RNG.standard_normal((30, 4)))
        distances, _ = index.search(RNG.standard_normal((3, 4)), k=10)
        assert (np.diff(distances, axis=1) >= 0).all()

    def test_k_capped_at_size(self):
        index = BruteForceIndex(2)
        index.add(RNG.standard_normal((3, 2)))
        distances, indices = index.search(np.zeros(2), k=10)
        assert indices.shape == (1, 3)

    def test_k_zero_returns_empty(self):
        index = BruteForceIndex(2)
        index.add(RNG.standard_normal((3, 2)))
        distances, indices = index.search(np.zeros((2, 2)), k=0)
        assert distances.shape == (2, 0)
        assert indices.shape == (2, 0)

    def test_empty_search_raises(self):
        with pytest.raises(RuntimeError):
            BruteForceIndex(2).search(np.zeros(2), 1)

    def test_tie_break_by_id(self):
        index = BruteForceIndex(3)
        index.add(np.tile(np.ones(3), (5, 1)))  # five identical vectors
        _, indices = index.search(np.ones(3), k=3)
        np.testing.assert_array_equal(indices[0], [0, 1, 2])

    def test_tie_break_spans_k_boundary(self):
        # Ties straddling the k boundary must resolve by id over the whole
        # ranking, matching the service's stable scan path: here ids 4..7
        # are all at distance 0 and only the three smallest ids may win.
        index = BruteForceIndex(1)
        index.add(np.array([[2.0], [2.0], [1.0], [1.0],
                            [0.0], [0.0], [0.0], [0.0]]))
        _, indices = index.search(np.zeros(1), k=3)
        np.testing.assert_array_equal(indices[0], [4, 5, 6])

    def test_dim_validation(self):
        index = BruteForceIndex(3)
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            BruteForceIndex(2, metric="cosine")


class TestIVFFlatIndex:
    def build(self, n=400, dim=8, n_lists=8, seed=0):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim))
        index = IVFFlatIndex(dim, n_lists=n_lists, n_probe=2)
        index.train(data, rng=rng)
        index.add(data)
        return index, data

    def test_add_before_train_raises(self):
        index = IVFFlatIndex(4)
        with pytest.raises(RuntimeError):
            index.add(np.zeros((2, 4)))

    def test_train_needs_enough_vectors(self):
        index = IVFFlatIndex(4, n_lists=16)
        with pytest.raises(ValueError):
            index.train(np.zeros((4, 4)))

    def test_search_shapes(self):
        index, data = self.build()
        distances, indices = index.search(data[:5], k=3)
        assert distances.shape == (5, 3)
        assert indices.shape == (5, 3)

    def test_self_query_finds_self_with_full_probe(self):
        index, data = self.build()
        _, indices = index.search(data[:20], k=1, n_probe=index.n_lists)
        np.testing.assert_array_equal(indices[:, 0], np.arange(20))

    def test_recall_improves_with_probe(self):
        index, data = self.build(n=600, n_lists=12, seed=1)
        truth = BruteForceIndex(8)
        truth.add(data)
        queries = np.random.default_rng(2).standard_normal((40, 8))
        _, exact = truth.search(queries, k=5)

        def recall(n_probe):
            _, approx = index.search(queries, k=5, n_probe=n_probe)
            hits = sum(
                len(set(approx[i]) & set(exact[i])) for i in range(len(queries))
            )
            return hits / exact.size

        low = recall(1)
        high = recall(12)
        assert high >= low
        assert high > 0.95, f"full probe recall {high}"

    def test_memory_accounting(self):
        index, data = self.build()
        assert index.memory_bytes >= data.nbytes

    def test_incremental_add(self):
        index, data = self.build(n=100)
        more = np.random.default_rng(3).standard_normal((50, 8))
        index.add(more)
        assert len(index) == 150
        _, indices = index.search(more[:3], k=1, n_probe=index.n_lists)
        np.testing.assert_array_equal(indices[:, 0], [100, 101, 102])

    def test_train_counts_and_resets_contents(self):
        index, data = self.build(n=100)
        assert index.train_count == 1
        # Re-training empties the inverted lists and restarts the ids, so
        # re-added vectors get ids from zero (no ghost entries).
        index.train(data, rng=np.random.default_rng(5))
        assert index.train_count == 2
        assert len(index) == 0
        index.add(data[:40])
        assert len(index) == 40
        _, indices = index.search(data[:3], k=1, n_probe=index.n_lists)
        np.testing.assert_array_equal(indices[:, 0], [0, 1, 2])

    def test_tie_break_by_id(self):
        index = IVFFlatIndex(4, n_lists=1, n_probe=1)
        data = np.tile(np.arange(4.0), (6, 1))  # six identical vectors
        index.train(data, rng=np.random.default_rng(0))
        index.add(data)
        _, indices = index.search(data[:1], k=3)
        np.testing.assert_array_equal(indices[0], [0, 1, 2])


class TestIVFBackendIndex:
    """Incremental updates through the service-facing IVF adapter."""

    def build(self, n=120, dim=8, seed=0):
        from repro.api import IVFBackendIndex

        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim))
        index = IVFBackendIndex(n_lists=8, n_probe=8, seed=0)
        index.add(data)
        return index, data, rng

    def test_append_does_not_retrain(self):
        index, data, rng = self.build()
        index.search(data[:2], k=3)
        assert index.train_count == 1
        more = rng.standard_normal((20, 8))
        index.add(more)
        index.search(data[:2], k=3)
        index.search(more[:2], k=3)
        assert index.train_count == 1, (
            "a small append must assign to existing centroids, not re-run "
            "k-means over the whole database"
        )
        assert len(index) == 140

    def test_appended_vectors_are_searchable(self):
        index, data, rng = self.build()
        index.search(data[:2], k=3)
        more = rng.standard_normal((20, 8)) + 0.1
        index.add(more)
        _, indices = index.search(more[:4], k=1)
        np.testing.assert_array_equal(indices[:, 0], [120, 121, 122, 123])

    def test_retrains_after_growth_threshold(self):
        index, data, rng = self.build()
        index.search(data[:2], k=3)
        assert index.train_count == 1
        index.add(rng.standard_normal((150, 8)))  # 270 > 2 * 120
        index.search(data[:2], k=3)
        assert index.train_count == 2

    def test_incremental_recall_close_to_rebuild(self):
        from repro.api import IVFBackendIndex

        rng = np.random.default_rng(7)
        data = rng.standard_normal((200, 8))
        extra = rng.standard_normal((60, 8))
        queries = rng.standard_normal((30, 8))
        truth = BruteForceIndex(8)
        truth.add(np.concatenate([data, extra]))
        _, exact = truth.search(queries, k=5)

        def recall(index):
            _, approx = index.search(queries, k=5)
            return sum(
                len(set(approx[i]) & set(exact[i]))
                for i in range(len(queries))
            ) / exact.size

        incremental = IVFBackendIndex(n_lists=8, n_probe=4, seed=0)
        incremental.add(data)
        incremental.search(queries[:1], k=1)  # trains on the initial 200
        incremental.add(extra)                # assigned, not re-trained
        rebuilt = IVFBackendIndex(n_lists=8, n_probe=4, seed=0)
        rebuilt.add(np.concatenate([data, extra]))
        assert incremental.train_count == 1
        assert recall(incremental) >= recall(rebuilt) - 0.1, (
            "incremental assignment should cost little recall vs a full "
            "rebuild"
        )

    def test_retrain_factor_validation_and_state(self):
        from repro.api import IVFBackendIndex, get_index

        with pytest.raises(ValueError, match="retrain_factor"):
            IVFBackendIndex(retrain_factor=0.5)
        index, data, _ = self.build()
        index.search(data[:1], k=1)
        meta, arrays = index.state()
        restored = get_index("ivf").restore(meta, arrays)
        assert restored.retrain_factor == index.retrain_factor
        assert len(restored) == len(index)


def random_trajectories(n=60, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        length = int(rng.integers(10, 30))
        start = rng.uniform(0, 5000, size=2)
        out.append(start + np.cumsum(rng.standard_normal((length, 2)) * 40, axis=0))
    return out


class TestSegmentHausdorffIndex:
    def test_knn_matches_bruteforce(self):
        trajs = random_trajectories()
        index = SegmentHausdorffIndex(bucket_size=400)
        index.build(trajs)
        query = trajs[7]
        distances, indices = index.knn(query, k=5)
        exact = np.array([hausdorff_distance(query, t) for t in trajs])
        expected = np.argsort(exact)[:5]
        np.testing.assert_array_equal(np.sort(indices), np.sort(expected))
        np.testing.assert_allclose(distances, np.sort(exact)[:5], atol=1e-9)

    def test_self_is_nearest(self):
        trajs = random_trajectories(seed=1)
        index = SegmentHausdorffIndex()
        index.build(trajs)
        _, indices = index.knn(trajs[3], k=1)
        assert indices[0] == 3

    def test_pruning_skips_evaluations(self):
        trajs = random_trajectories(n=200, seed=2)
        index = SegmentHausdorffIndex(bucket_size=400)
        index.build(trajs)
        index.knn(trajs[0], k=3)
        assert index.last_exact_evaluations < len(trajs), (
            "lower-bound pruning should avoid scanning every trajectory"
        )

    def test_lower_bound_is_valid(self):
        trajs = random_trajectories(n=40, seed=3)
        index = SegmentHausdorffIndex()
        index.build(trajs)
        query = trajs[11]
        bounds = index.lower_bound(np.asarray(query))
        exact = np.array([hausdorff_distance(query, t) for t in trajs])
        assert (bounds <= exact + 1e-9).all()

    def test_memory_grows_with_segments(self):
        small = SegmentHausdorffIndex()
        small.build(random_trajectories(n=10, seed=4))
        large = SegmentHausdorffIndex()
        large.build(random_trajectories(n=100, seed=4))
        assert large.memory_bytes > small.memory_bytes

    def test_build_validation(self):
        with pytest.raises(ValueError):
            SegmentHausdorffIndex().build([])
        with pytest.raises(ValueError):
            SegmentHausdorffIndex(bucket_size=0)
        index = SegmentHausdorffIndex()
        with pytest.raises(RuntimeError):
            index.knn(np.zeros((3, 2)), 1)
        with pytest.raises(RuntimeError):
            index.knn_batch([np.zeros((3, 2))], 1)

    def test_batched_lower_bounds_match_single(self):
        """One vectorized pass over all queries must reproduce the
        per-query bound exactly (same pruning decisions)."""
        trajs = random_trajectories(n=50, seed=5)
        index = SegmentHausdorffIndex(bucket_size=400)
        index.build(trajs)
        queries = [trajs[0], trajs[7][:3], trajs[20]]
        batched = index.lower_bounds_batch(queries)
        assert batched.shape == (3, 50)
        for row, query in enumerate(queries):
            np.testing.assert_array_equal(
                batched[row], index.lower_bound(np.asarray(query))
            )
        # Chunked query blocks must not change the result.
        np.testing.assert_array_equal(
            index.lower_bounds_batch(queries, max_elements=64), batched
        )

    def test_knn_batch_matches_per_query_knn(self):
        trajs = random_trajectories(n=60, seed=6)
        index = SegmentHausdorffIndex(bucket_size=400)
        index.build(trajs)
        queries = [trajs[2], trajs[11], trajs[33][:5]]
        batch_d, batch_i = index.knn_batch(queries, k=4)
        assert batch_d.shape == (3, 4) and batch_i.shape == (3, 4)
        for row, query in enumerate(queries):
            single_d, single_i = index.knn(query, k=4)
            np.testing.assert_array_equal(batch_i[row], single_i)
            np.testing.assert_allclose(batch_d[row], single_d, atol=1e-12)

    def test_knn_batch_pads_small_database(self):
        trajs = random_trajectories(n=3, seed=7)
        index = SegmentHausdorffIndex()
        index.build(trajs)
        distances, indices = index.knn_batch([trajs[0]], k=5)
        assert distances.shape == (1, 5) and indices.shape == (1, 5)
        assert (indices[0, 3:] == -1).all()
        assert np.isinf(distances[0, 3:]).all()
