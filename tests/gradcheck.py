"""Finite-difference gradient checking used across the nn test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numeric_gradient(f: Callable[[], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x`` (in place)."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        f_plus = f()
        flat_x[i] = original - eps
        f_minus = f()
        flat_x[i] = original
        flat_g[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def assert_gradients_close(
    forward: Callable[[Sequence[Tensor]], Tensor],
    arrays: Sequence[np.ndarray],
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Compare analytic and numeric gradients of ``forward``.

    ``forward`` receives freshly wrapped tensors for ``arrays`` each call and
    must return a scalar Tensor.
    """
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = forward(tensors)
    assert out.size == 1, "gradcheck requires a scalar output"
    out.backward()

    for idx, (tensor, array) in enumerate(zip(tensors, arrays)):
        def scalar() -> float:
            fresh = [Tensor(a) for a in arrays]
            return float(forward(fresh).data)

        expected = numeric_gradient(scalar, array)
        actual = tensor.grad
        assert actual is not None, f"missing gradient for input {idx}"
        np.testing.assert_allclose(
            actual, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {idx}",
        )
