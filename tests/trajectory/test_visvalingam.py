"""Tests for Visvalingam-Whyatt simplification and its augmentation hook."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.augmentation import simplify_vw
from repro.trajectory import triangle_area, visvalingam, visvalingam_mask

finite_points = arrays(
    np.float64, st.tuples(st.integers(2, 40), st.just(2)),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)


def walk(n=30, seed=0, step=50.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, 2)) * step, axis=0)


class TestTriangleArea:
    def test_right_triangle(self):
        assert triangle_area(
            np.array([0.0, 0.0]), np.array([4.0, 0.0]), np.array([0.0, 3.0])
        ) == pytest.approx(6.0)

    def test_collinear_is_zero(self):
        assert triangle_area(
            np.array([0.0, 0.0]), np.array([1.0, 1.0]), np.array([2.0, 2.0])
        ) == pytest.approx(0.0)


class TestVisvalingam:
    def test_collinear_collapses(self):
        line = np.stack([np.arange(10, dtype=float), np.zeros(10)], axis=1)
        simplified = visvalingam(line, min_area=1.0)
        assert len(simplified) == 2

    def test_endpoints_kept(self):
        pts = walk(20, seed=1)
        simplified = visvalingam(pts, min_area=1e4)
        np.testing.assert_allclose(simplified[0], pts[0])
        np.testing.assert_allclose(simplified[-1], pts[-1])

    def test_zero_threshold_keeps_non_collinear(self):
        pts = walk(15, seed=2)
        assert len(visvalingam(pts, min_area=0.0)) == len(pts)

    def test_huge_threshold_keeps_endpoints_only(self):
        pts = walk(25, seed=3)
        assert len(visvalingam(pts, min_area=1e18)) == 2

    def test_significant_corner_survives(self):
        corner = np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 100.0]])
        simplified = visvalingam(corner, min_area=100.0)
        assert len(simplified) == 3

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            visvalingam(walk(5), min_area=-1.0)

    @settings(max_examples=25, deadline=None)
    @given(finite_points, st.floats(0, 1e6, allow_nan=False))
    def test_property_mask_keeps_subsequence(self, pts, threshold):
        mask = visvalingam_mask(pts, threshold)
        assert mask[0] and mask[-1]
        assert mask.sum() >= 2

    @settings(max_examples=25, deadline=None)
    @given(finite_points)
    def test_property_monotone_in_threshold(self, pts):
        small = visvalingam_mask(pts, 10.0).sum()
        large = visvalingam_mask(pts, 1e6).sum()
        assert large <= small


class TestSimplifyVWAugmentation:
    def test_output_valid(self):
        pts = walk(30, seed=4)
        out = simplify_vw(pts, np.random.default_rng(0))
        assert 2 <= len(out) <= len(pts)
        assert np.isfinite(out).all()

    def test_degenerate_input_returned_whole(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = simplify_vw(pts)
        np.testing.assert_allclose(out, pts)

    def test_usable_in_training_views(self):
        from repro.core.augmentation import make_view

        pts = walk(30, seed=5)
        out = make_view(pts, "simplify_vw", np.random.default_rng(1))
        assert len(out) >= 2
