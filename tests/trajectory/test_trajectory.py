"""Tests for the Trajectory primitive, Grid, Douglas-Peucker and preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.trajectory import (
    Grid,
    Trajectory,
    as_points,
    douglas_peucker,
    douglas_peucker_mask,
    filter_trajectories,
    pad_point_arrays,
    point_segment_distance,
    resample_to_length,
)

RNG = np.random.default_rng(3)

finite_points = arrays(
    np.float64, st.tuples(st.integers(2, 40), st.just(2)),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)


def random_walk(n=30, step=10.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal((n, 2)) * step, axis=0)


class TestTrajectory:
    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            Trajectory(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            Trajectory(np.array([[np.nan, 0.0]]))

    def test_immutability(self):
        traj = Trajectory(random_walk())
        with pytest.raises(Exception):
            traj.points[0, 0] = 99.0
        with pytest.raises(AttributeError):
            traj.points = np.zeros((2, 2))

    def test_length_of_straight_line(self):
        traj = Trajectory([[0, 0], [3, 4], [6, 8]])
        assert traj.length() == pytest.approx(10.0)

    def test_single_point_length_zero(self):
        assert Trajectory([[1, 2]]).length() == 0.0

    def test_bbox(self):
        traj = Trajectory([[0, 5], [-2, 1], [4, 3]])
        assert traj.bbox() == (-2, 1, 4, 5)

    def test_slicing_returns_trajectory(self):
        traj = Trajectory(random_walk(10))
        assert isinstance(traj[2:6], Trajectory)
        assert len(traj[2:6]) == 4
        np.testing.assert_allclose(traj[3], traj.points[3])

    def test_equality_and_hash(self):
        a = Trajectory([[0, 0], [1, 1]])
        b = Trajectory([[0, 0], [1, 1]])
        c = Trajectory([[0, 0], [2, 2]])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_reversed(self):
        traj = Trajectory(random_walk(5))
        np.testing.assert_allclose(traj.reversed().points, traj.points[::-1])

    def test_turning_radians_straight_line(self):
        traj = Trajectory([[0, 0], [1, 0], [2, 0], [3, 0]])
        np.testing.assert_allclose(traj.turning_radians(), np.pi * np.ones(4))

    def test_turning_radians_right_angle(self):
        traj = Trajectory([[0, 0], [1, 0], [1, 1]])
        assert traj.turning_radians()[1] == pytest.approx(np.pi / 2)

    def test_as_points_passthrough_and_coercion(self):
        raw = random_walk(4)
        traj = Trajectory(raw)
        assert as_points(traj) is traj.points
        np.testing.assert_allclose(as_points(raw.tolist()), raw)

    @settings(max_examples=30, deadline=None)
    @given(finite_points)
    def test_property_length_at_least_endpoint_distance(self, pts):
        traj = Trajectory(pts)
        direct = float(np.linalg.norm(pts[-1] - pts[0]))
        assert traj.length() >= direct - 1e-6

    @settings(max_examples=30, deadline=None)
    @given(finite_points)
    def test_property_reverse_preserves_length(self, pts):
        traj = Trajectory(pts)
        assert traj.length() == pytest.approx(traj.reversed().length(), rel=1e-9, abs=1e-9)


class TestGrid:
    def make(self):
        return Grid(0, 0, 1000, 500, cell_size=100)

    def test_dimensions(self):
        grid = self.make()
        assert grid.n_cols == 10
        assert grid.n_rows == 5
        assert grid.n_cells == 50

    def test_cell_of_known_points(self):
        grid = self.make()
        ids = grid.cell_of(np.array([[50.0, 50.0], [950.0, 450.0]]))
        assert ids[0] == 0
        assert ids[1] == 49

    def test_points_outside_are_clamped(self):
        grid = self.make()
        ids = grid.cell_of(np.array([[-100.0, -100.0], [2000.0, 2000.0]]))
        assert ids[0] == 0
        assert ids[1] == grid.n_cells - 1

    def test_cell_center_roundtrip(self):
        grid = self.make()
        centers = grid.cell_center(np.arange(grid.n_cells))
        ids = grid.cell_of(centers)
        np.testing.assert_array_equal(ids, np.arange(grid.n_cells))

    def test_neighbors_interior_corner_edge(self):
        grid = self.make()
        interior = grid.cell_of(np.array([[550.0, 250.0]]))[0]
        assert len(grid.neighbors(int(interior))) == 8
        assert len(grid.neighbors(0)) == 3  # corner
        assert len(grid.neighbors(5)) == 5  # bottom edge

    def test_neighbors_are_symmetric(self):
        grid = self.make()
        for cell in [0, 7, 23, 49]:
            for other in grid.neighbors(cell):
                assert cell in grid.neighbors(other)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Grid(0, 0, 10, 10, cell_size=0)
        with pytest.raises(ValueError):
            Grid(10, 0, 0, 10, cell_size=1)

    def test_covering(self):
        trajs = [random_walk(20, seed=s) for s in range(3)]
        grid = Grid.covering(trajs, cell_size=50)
        for traj in trajs:
            ids = grid.cell_of(traj)
            assert (ids >= 0).all() and (ids < grid.n_cells).all()

    def test_covering_empty_raises(self):
        with pytest.raises(ValueError):
            Grid.covering([], cell_size=50)

    def test_bad_cell_ids_raise(self):
        grid = self.make()
        with pytest.raises(IndexError):
            grid.cell_center(np.array([grid.n_cells]))


class TestDouglasPeucker:
    def test_collinear_collapses_to_endpoints(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        simplified = douglas_peucker(pts, epsilon=0.1)
        np.testing.assert_allclose(simplified, [[0, 0], [3, 0]])

    def test_keeps_significant_corner(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 0.0]])
        simplified = douglas_peucker(pts, epsilon=1.0)
        assert len(simplified) == 3

    def test_epsilon_zero_keeps_non_collinear_points(self):
        pts = random_walk(20, seed=1)
        simplified = douglas_peucker(pts, epsilon=0.0)
        assert len(simplified) == len(pts)

    def test_huge_epsilon_keeps_only_endpoints(self):
        pts = random_walk(50, seed=2)
        simplified = douglas_peucker(pts, epsilon=1e9)
        assert len(simplified) == 2
        np.testing.assert_allclose(simplified[0], pts[0])
        np.testing.assert_allclose(simplified[-1], pts[-1])

    def test_mask_endpoints_always_kept(self):
        pts = random_walk(30, seed=3)
        mask = douglas_peucker_mask(pts, epsilon=5.0)
        assert mask[0] and mask[-1]

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            douglas_peucker(random_walk(5), epsilon=-1.0)

    def test_two_points_untouched(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        np.testing.assert_allclose(douglas_peucker(pts, 10.0), pts)

    def test_long_trajectory_no_recursion_error(self):
        # zig-zag of 20k points: recursive implementations blow the stack
        n = 20000
        pts = np.stack([np.arange(n, dtype=float),
                        np.tile([0.0, 100.0], n // 2)], axis=1)
        simplified = douglas_peucker(pts, epsilon=1.0)
        assert len(simplified) == n

    @settings(max_examples=25, deadline=None)
    @given(finite_points, st.floats(0, 1e3, allow_nan=False))
    def test_property_simplification_is_subsequence(self, pts, eps):
        mask = douglas_peucker_mask(pts, eps)
        simplified = pts[mask]
        assert len(simplified) >= 2 or len(pts) < 2
        # kept points appear in original order
        rows = {tuple(p) for p in simplified.tolist()}
        assert rows <= {tuple(p) for p in pts.tolist()}

    @settings(max_examples=25, deadline=None)
    @given(finite_points)
    def test_property_monotone_in_epsilon(self, pts):
        small = douglas_peucker_mask(pts, 1.0).sum()
        large = douglas_peucker_mask(pts, 100.0).sum()
        assert large <= small


class TestPointSegmentDistance:
    def test_perpendicular_distance(self):
        d = point_segment_distance(np.array([[0.0, 1.0]]),
                                   np.array([-1.0, 0.0]), np.array([1.0, 0.0]))
        assert d[0] == pytest.approx(1.0)

    def test_beyond_endpoint_uses_point_distance(self):
        d = point_segment_distance(np.array([[3.0, 0.0]]),
                                   np.array([0.0, 0.0]), np.array([1.0, 0.0]))
        assert d[0] == pytest.approx(2.0)

    def test_degenerate_segment(self):
        d = point_segment_distance(np.array([[3.0, 4.0]]),
                                   np.array([0.0, 0.0]), np.array([0.0, 0.0]))
        assert d[0] == pytest.approx(5.0)


class TestPreprocess:
    def test_filters_by_point_count(self):
        trajs = [random_walk(5), random_walk(50), random_walk(300)]
        kept = filter_trajectories(trajs, min_points=20, max_points=200)
        assert len(kept) == 1
        assert len(kept[0]) == 50

    def test_filters_by_bbox(self):
        inside = np.array([[1.0, 1.0]] * 25)
        outside = inside + 100.0
        kept = filter_trajectories([inside, outside], min_points=1, max_points=100,
                                   bbox=(0, 0, 10, 10))
        assert len(kept) == 1

    def test_drops_invalid_records(self):
        bad = np.array([[np.nan, 0.0]] * 30)
        kept = filter_trajectories([bad, random_walk(30)], min_points=20)
        assert len(kept) == 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            filter_trajectories([], min_points=10, max_points=5)

    def test_pad_point_arrays(self):
        batch, lengths = pad_point_arrays([random_walk(3), random_walk(5)])
        assert batch.shape == (2, 5, 2)
        np.testing.assert_array_equal(lengths, [3, 5])
        np.testing.assert_allclose(batch[0, 3:], 0.0)

    def test_pad_truncates_to_max_len(self):
        batch, lengths = pad_point_arrays([random_walk(10)], max_len=4)
        assert batch.shape == (1, 4, 2)
        assert lengths[0] == 4

    def test_pad_empty_raises(self):
        with pytest.raises(ValueError):
            pad_point_arrays([])

    def test_resample_preserves_endpoints(self):
        pts = random_walk(10, seed=4)
        resampled = resample_to_length(pts, 25)
        assert resampled.shape == (25, 2)
        np.testing.assert_allclose(resampled[0], pts[0])
        np.testing.assert_allclose(resampled[-1], pts[-1])

    def test_resample_straight_line_uniform(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        resampled = resample_to_length(pts, 5)
        np.testing.assert_allclose(resampled[:, 0], [0, 2.5, 5, 7.5, 10])
