"""Fine-tune a pre-trained TrajCL into a fast EDwP estimator (paper §V-F).

EDwP is the most accurate heuristic under non-uniform sampling but also by
far the slowest (paper Table VIII). The paper's downstream task replaces
it with a fine-tuned TrajCL: embed once, compare in O(d). This example
reports the Table X metrics (HR@5, HR@20, R5@20) for both fine-tuning
modes — TrajCL (last encoder layer) and TrajCL* (all layers).

Run:  python examples/approximate_heuristic.py
"""

import time

import numpy as np

from repro.core import HeuristicApproximator
from repro.datasets import downstream_split
from repro.eval import approximation_metrics, build_city_pipeline, format_table
from repro.api import get_backend


def main() -> None:
    print("Pre-training TrajCL on Porto-like data...")
    pipeline = build_city_pipeline("porto", n_trajectories=240, train_epochs=3, seed=0)

    train, _validation, test = downstream_split(
        pipeline.trajectories, rng=np.random.default_rng(1)
    )
    measure = get_backend("edwp")

    rows = []
    for mode, label in [("last_layer", "TrajCL"), ("all", "TrajCL*")]:
        approximator = HeuristicApproximator(
            pipeline.model, mode=mode, rng=np.random.default_rng(2)
        )
        t0 = time.perf_counter()
        history = approximator.fit(
            train, measure, epochs=6, pairs_per_epoch=300, batch_size=32,
            rng=np.random.default_rng(3),
        )
        fit_seconds = time.perf_counter() - t0

        queries, database = test[:10], test
        metrics = approximation_metrics(approximator, measure, queries, database)
        rows.append([
            label, metrics["hr5"], metrics["hr20"], metrics["r5at20"],
            f"{history.losses[-1]:.4f}", f"{fit_seconds:.1f}",
        ])

    print()
    print("Approximating EDwP (paper Table X metrics):")
    print(format_table(
        ["model", "HR@5", "HR@20", "R5@20", "final MSE", "fit (s)"], rows
    ))
    print("\nTrajCL* fine-tunes every encoder layer and should score highest,")
    print("matching the paper's Table X ordering.")


if __name__ == "__main__":
    main()
