"""Gallery of the TrajCL augmentation methods (paper §IV-A, Fig. 3).

Renders one synthetic trajectory and each of its augmented views as ASCII
mini-maps so the effect of every method is visible in a terminal: point
shifting jitters, point masking thins, truncating cuts an end span,
simplification keeps only shape-critical turning points.

Run:  python examples/augmentation_gallery.py
"""

import numpy as np

from repro.core.augmentation import available_augmentations, make_view
from repro.datasets import generate_city, get_preset


def render(points: np.ndarray, bbox, width: int = 44, height: int = 13) -> str:
    """ASCII raster of a polyline within ``bbox``."""
    min_x, min_y, max_x, max_y = bbox
    canvas = [[" "] * width for _ in range(height)]
    cols = np.clip(((points[:, 0] - min_x) / (max_x - min_x) * (width - 1)),
                   0, width - 1).astype(int)
    rows = np.clip(((points[:, 1] - min_y) / (max_y - min_y) * (height - 1)),
                   0, height - 1).astype(int)
    for col, row in zip(cols, rows):
        canvas[height - 1 - row][col] = "o"
    canvas[height - 1 - rows[0]][cols[0]] = "S"
    canvas[height - 1 - rows[-1]][cols[-1]] = "E"
    return "\n".join("".join(line) for line in canvas)


def main() -> None:
    trajectory = generate_city(get_preset("porto"), 1, seed=4)[0]
    margin = 200.0
    bbox = (
        trajectory[:, 0].min() - margin, trajectory[:, 1].min() - margin,
        trajectory[:, 0].max() + margin, trajectory[:, 1].max() + margin,
    )
    rng = np.random.default_rng(7)

    for name in available_augmentations():
        view = make_view(trajectory, name, rng)
        print(f"--- {name}  ({len(trajectory)} -> {len(view)} points) " + "-" * 20)
        print(render(view, bbox))
        print()

    print("S = start, E = end. Views preserve identity while varying the")
    print("characteristics the encoder must learn to be invariant to.")


if __name__ == "__main__":
    main()
