"""Cross-dataset generalization: train on Porto, query Xi'an (paper §V-B,
Table VI).

A TrajCL encoder pre-trained on one city is applied to another city
*without fine-tuning*. The paper attributes the strong transfer to the
dual-feature encoder capturing generic correlation patterns. Grid-cell
embeddings are city-specific (they encode a city's own grid graph), so the
transfer re-uses the *encoder weights* with the target city's feature
pipeline — exactly the protocol that matters for deployment.

Run:  python examples/cross_city.py
"""

import numpy as np

from repro.core import FeatureEnrichment, TrajCL
from repro.eval import (
    build_city_pipeline,
    evaluate_mean_rank,
    format_table,
    make_instance,
)


def main() -> None:
    print("Training TrajCL on Porto-like data...")
    porto = build_city_pipeline("porto", n_trajectories=240, train_epochs=3, seed=0)

    print("Preparing Xi'an-like target city (feature pipeline only)...")
    xian = build_city_pipeline("xian", n_trajectories=240, train=False, seed=5)

    # Transfer: Porto-trained encoder weights + Xi'an feature pipeline.
    transferred = TrajCL(
        FeatureEnrichment(xian.grid, xian.cell_embeddings,
                          max_len=xian.config.max_len),
        xian.config,
        rng=np.random.default_rng(9),
    )
    transferred.encoder.load_state_dict(porto.model.encoder.state_dict())

    print("Training a native Xi'an model for reference...")
    native = build_city_pipeline("xian", n_trajectories=240, train_epochs=3, seed=5)

    instance = make_instance(xian.trajectories, n_queries=20, database_size=120,
                             seed=7)
    rows = [
        ["Xi'an -> Xi'an (native)", evaluate_mean_rank(native.model, instance)],
        ["Porto -> Xi'an (transfer)", evaluate_mean_rank(transferred, instance)],
    ]
    print()
    print("Mean rank of the ground-truth match (lower is better, best = 1.0):")
    print(format_table(["setting", "mean rank"], rows))
    print("\nThe paper's Table VI: the transferred encoder stays close to the")
    print("native one, demonstrating generic trajectory-correlation learning.")


if __name__ == "__main__":
    main()
