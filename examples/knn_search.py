"""kNN trajectory search with an IVF vector index (paper §V-E, Fig. 6).

Embeds a trajectory database with a pre-trained TrajCL model, indexes the
embeddings with the IVFFlat (Faiss-style Voronoi) index, and contrasts
query latency and memory against the segment-based Hausdorff index (the
DFT-style heuristic baseline).

Run:  python examples/knn_search.py
"""

import time

import numpy as np

from repro.datasets import generate_city, get_preset
from repro.eval import build_city_pipeline, format_table
from repro.index import IVFFlatIndex, SegmentHausdorffIndex


def main() -> None:
    print("Pre-training TrajCL on Xi'an-like data...")
    pipeline = build_city_pipeline("xian", n_trajectories=240, train_epochs=2, seed=0)

    print("Generating the search database...")
    database = generate_city(get_preset("xian"), 600, seed=10)
    queries = generate_city(get_preset("xian"), 20, seed=11)

    # --- TrajCL + IVF ---------------------------------------------------
    t0 = time.perf_counter()
    database_embeddings = pipeline.model.encode(database)
    embed_seconds = time.perf_counter() - t0

    index = IVFFlatIndex(dim=database_embeddings.shape[1], n_lists=16, n_probe=4)
    t0 = time.perf_counter()
    index.train(database_embeddings, rng=np.random.default_rng(0))
    index.add(database_embeddings)
    ivf_build_seconds = time.perf_counter() - t0

    query_embeddings = pipeline.model.encode(queries)
    t0 = time.perf_counter()
    _, ivf_neighbors = index.search(query_embeddings, k=3)
    ivf_query_seconds = time.perf_counter() - t0

    # --- Hausdorff + segment index --------------------------------------
    segment_index = SegmentHausdorffIndex(bucket_size=400)
    t0 = time.perf_counter()
    segment_index.build(database)
    segment_build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    segment_neighbors = [segment_index.knn(q, k=3)[1] for q in queries]
    segment_query_seconds = time.perf_counter() - t0

    print()
    print(format_table(
        ["method", "build (s)", "query 20x3NN (s)", "memory (MB)"],
        [
            ["TrajCL + IVF", embed_seconds + ivf_build_seconds,
             ivf_query_seconds, index.memory_bytes / 1e6],
            ["Hausdorff + segment idx", segment_build_seconds,
             segment_query_seconds, segment_index.memory_bytes / 1e6],
        ],
    ))

    agreement = np.mean([
        len(set(ivf_neighbors[i].tolist()) & set(segment_neighbors[i].tolist())) / 3
        for i in range(len(queries))
    ])
    print(f"\nTop-3 agreement between the two methods: {agreement:.2f}")
    print("(The paper's Fig. 6: embedding kNN is orders of magnitude faster "
          "at scale, and Table IX: the segment index needs far more memory.)")


if __name__ == "__main__":
    main()
