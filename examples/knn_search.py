"""kNN trajectory search with an IVF vector index (paper §V-E, Fig. 6).

Stands up two :class:`repro.api.SimilarityService` instances over the same
database — TrajCL embeddings behind the IVFFlat (Faiss-style Voronoi)
index, and the Hausdorff heuristic behind the segment (DFT-style) index —
and contrasts build time, query latency and memory, the Fig. 6 / Table IX
comparison.

Run:  python examples/knn_search.py
"""

import time

import numpy as np

from repro.api import SimilarityService
from repro.datasets import generate_city, get_preset
from repro.eval import build_city_pipeline, format_table


def main() -> None:
    print("Pre-training TrajCL on Xi'an-like data...")
    pipeline = build_city_pipeline("xian", n_trajectories=240, train_epochs=2, seed=0)

    print("Generating the search database...")
    database = generate_city(get_preset("xian"), 600, seed=10)
    queries = generate_city(get_preset("xian"), 20, seed=11)

    # --- TrajCL + IVF ---------------------------------------------------
    trajcl = SimilarityService(
        backend=pipeline.model, index="ivf",
        index_kwargs={"n_lists": 16, "n_probe": 4, "seed": 0},
    )
    t0 = time.perf_counter()
    trajcl.add(database)  # encode + index
    _ = trajcl.knn(queries[:1], k=1)  # force the lazy quantizer build
    ivf_build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, ivf_neighbors = trajcl.knn(queries, k=3)
    ivf_query_seconds = time.perf_counter() - t0

    # --- Hausdorff + segment index --------------------------------------
    hausdorff = SimilarityService(
        backend="hausdorff", index="segment",
        index_kwargs={"bucket_size": 400},
    )
    t0 = time.perf_counter()
    hausdorff.add(database)
    _ = hausdorff.knn(queries[:1], k=1)  # force the lazy bucket build
    segment_build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, segment_neighbors = hausdorff.knn(queries, k=3)
    segment_query_seconds = time.perf_counter() - t0

    print()
    print(format_table(
        ["method", "build (s)", "query 20x3NN (s)", "memory (MB)"],
        [
            ["TrajCL + IVF", ivf_build_seconds, ivf_query_seconds,
             trajcl.index.memory_bytes / 1e6],
            ["Hausdorff + segment idx", segment_build_seconds,
             segment_query_seconds,
             hausdorff.index.memory_bytes / 1e6],
        ],
    ))

    agreement = np.mean([
        len(set(ivf_neighbors[i].tolist()) & set(segment_neighbors[i].tolist())) / 3
        for i in range(len(queries))
    ])
    print(f"\nTop-3 agreement between the two methods: {agreement:.2f}")
    print("(The paper's Fig. 6: embedding kNN is orders of magnitude faster "
          "at scale, and Table IX: the segment index needs far more memory.)")


if __name__ == "__main__":
    main()
