"""Quickstart: train TrajCL on a synthetic city and query similar trajectories.

This walks the full pipeline of the paper's Fig. 2 at laptop scale:

1. generate a Porto-like synthetic taxi dataset;
2. learn grid-cell embeddings with node2vec (paper §IV-B);
3. pre-train the TrajCL encoder contrastively (no labels, paper §III);
4. stand up a :class:`repro.api.SimilarityService` per backend and run a
   3-nearest-neighbour query (the paper's Fig. 1 scenario), comparing
   TrajCL against the Hausdorff heuristic.

Run:  python examples/quickstart.py
"""

from repro.api import SimilarityService
from repro.eval import build_city_pipeline, format_table


def main() -> None:
    print("Building Porto-like pipeline (data -> node2vec -> TrajCL pre-training)...")
    pipeline = build_city_pipeline(
        "porto", n_trajectories=240, train_epochs=3, seed=0
    )
    print(f"  trained {pipeline.history.epochs_run} epochs, "
          f"final loss {pipeline.history.losses[-1]:.3f}, "
          f"{pipeline.history.total_seconds:.1f}s")

    # One service per backend over the same database; similarity = L1
    # distance in embedding space for TrajCL, exact Hausdorff for the
    # heuristic — the unified repro.api contract.
    trajectories = pipeline.trajectories
    trajcl = SimilarityService(backend=pipeline.model).add(trajectories)
    hausdorff = SimilarityService(backend="hausdorff").add(trajectories)
    print(f"  services: {trajcl} / {hausdorff}")

    # 3NN query for one database trajectory (cf. paper Fig. 1); ``exclude``
    # keeps the query itself out of its own neighbour list.
    query_index = 7
    query = trajectories[query_index]
    trajcl_d, trajcl_ids = trajcl.knn(query, k=3, exclude=query_index)
    haus_d, haus_ids = hausdorff.knn(query, k=3, exclude=query_index)

    rows = []
    for rank in range(3):
        rows.append([
            rank + 1,
            int(trajcl_ids[0, rank]), f"{trajcl_d[0, rank]:.3f}",
            int(haus_ids[0, rank]), f"{haus_d[0, rank]:.1f}",
        ])
    print()
    print("3NN of trajectory", query_index, "(TrajCL embedding vs Hausdorff):")
    print(format_table(
        ["rank", "TrajCL id", "L1 dist", "Hausdorff id", "H dist"], rows
    ))

    overlap = len(set(trajcl_ids[0].tolist()) & set(haus_ids[0].tolist()))
    print(f"\nTop-3 overlap with Hausdorff: {overlap}/3")
    print("Per-pair similarity cost: O(d) embedding distance vs O(n*m) heuristic.")


if __name__ == "__main__":
    main()
