"""Quickstart: train TrajCL on a synthetic city and query similar trajectories.

This walks the full pipeline of the paper's Fig. 2 at laptop scale:

1. generate a Porto-like synthetic taxi dataset;
2. learn grid-cell embeddings with node2vec (paper §IV-B);
3. pre-train the TrajCL encoder contrastively (no labels, paper §III);
4. embed trajectories and run a 3-nearest-neighbour query (the paper's
   Fig. 1 scenario), comparing against the Hausdorff heuristic.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.eval import build_city_pipeline, format_table
from repro.measures import get_measure


def main() -> None:
    print("Building Porto-like pipeline (data -> node2vec -> TrajCL pre-training)...")
    pipeline = build_city_pipeline(
        "porto", n_trajectories=240, train_epochs=3, seed=0
    )
    print(f"  trained {pipeline.history.epochs_run} epochs, "
          f"final loss {pipeline.history.losses[-1]:.3f}, "
          f"{pipeline.history.total_seconds:.1f}s")

    # Embed the whole dataset once; similarity = L1 distance in this space.
    trajectories = pipeline.trajectories
    embeddings = pipeline.model.encode(trajectories)
    print(f"  embeddings: {embeddings.shape}")

    # 3NN query for one held-out-style trajectory (cf. paper Fig. 1).
    query_index = 7
    query_embedding = embeddings[query_index]
    distances = np.abs(embeddings - query_embedding).sum(axis=1)
    distances[query_index] = np.inf  # exclude self
    trajcl_top3 = np.argsort(distances)[:3]

    hausdorff = get_measure("hausdorff")
    heuristic_distances = np.array([
        hausdorff.distance(trajectories[query_index], t) for t in trajectories
    ])
    heuristic_distances[query_index] = np.inf
    hausdorff_top3 = np.argsort(heuristic_distances)[:3]

    rows = []
    for rank in range(3):
        rows.append([
            rank + 1,
            int(trajcl_top3[rank]), f"{distances[trajcl_top3[rank]]:.3f}",
            int(hausdorff_top3[rank]), f"{heuristic_distances[hausdorff_top3[rank]]:.1f}",
        ])
    print()
    print("3NN of trajectory", query_index, "(TrajCL embedding vs Hausdorff):")
    print(format_table(
        ["rank", "TrajCL id", "L1 dist", "Hausdorff id", "H dist"], rows
    ))

    overlap = len(set(trajcl_top3.tolist()) & set(hausdorff_top3.tolist()))
    print(f"\nTop-3 overlap with Hausdorff: {overlap}/3")
    print("Per-pair similarity cost: O(d) embedding distance vs O(n*m) heuristic.")


if __name__ == "__main__":
    main()
